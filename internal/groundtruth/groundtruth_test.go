package groundtruth

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/profiler"
	"repro/internal/sim"
)

var (
	zoneA = core.Zone{Region: "us-central1", Name: "us-central1-a"}
	zoneW = core.Zone{Region: "us-west1", Name: "us-west1-a"}
)

func uniformPlan(g core.GPUType, z core.Zone, pp, dp, tp, mbs, layers int) core.Plan {
	per := layers / pp
	rem := layers - per*pp
	stages := make([]core.StagePlan, pp)
	first := 0
	for i := range stages {
		n := per
		if i < rem {
			n++
		}
		reps := make([]core.StageReplica, dp)
		for j := range reps {
			reps[j] = core.StageReplica{GPU: g, TP: tp, Zone: z}
		}
		stages[i] = core.StagePlan{FirstLayer: first, NumLayers: n, Replicas: reps}
		first += n
	}
	return core.Plan{MicroBatchSize: mbs, Stages: stages}
}

func TestMeasureDeterministic(t *testing.T) {
	cfg := model.OPT350M()
	e := New(cfg)
	plan := uniformPlan(core.A100, zoneA, 2, 4, 1, 2, cfg.Layers)
	a, err := e.Measure(plan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Measure(plan)
	if err != nil {
		t.Fatal(err)
	}
	if a.IterTime != b.IterTime || a.PeakMemory != b.PeakMemory {
		t.Error("same seed must reproduce the measurement exactly")
	}
	e2 := New(cfg)
	e2.Seed = 99
	c, err := e2.Measure(plan)
	if err != nil {
		t.Fatal(err)
	}
	if c.IterTime == a.IterTime {
		t.Error("different seeds should jitter the measurement")
	}
}

// TestSimulatorCalibration is the reproduction of the paper's §5.1 claim:
// the Sailor simulator's iteration-time estimate lands within a few percent
// of a real (here: ground-truth) run across plan shapes.
func TestSimulatorCalibration(t *testing.T) {
	cfg := model.OPT350M()
	prof, err := profiler.Collect(cfg, []core.GPUType{core.A100, core.GH200}, nil, profiler.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(cfg, prof)
	e := New(cfg)
	cases := []core.Plan{
		uniformPlan(core.A100, zoneA, 2, 4, 1, 2, cfg.Layers),
		uniformPlan(core.A100, zoneA, 4, 2, 2, 4, cfg.Layers),
		uniformPlan(core.GH200, zoneA, 2, 2, 4, 8, cfg.Layers),
		uniformPlan(core.A100, zoneA, 1, 8, 2, 2, cfg.Layers),
	}
	for i, plan := range cases {
		est, err := s.Estimate(plan)
		if err != nil {
			t.Fatalf("case %d estimate: %v", i, err)
		}
		meas, err := e.Measure(plan)
		if err != nil {
			t.Fatalf("case %d measure: %v", i, err)
		}
		rel := math.Abs(est.IterTime-meas.IterTime) / meas.IterTime
		if rel > 0.12 {
			t.Errorf("case %d: simulator off by %.1f%% (est %v, real %v); paper reports ~6%%",
				i, 100*rel, est.IterTime, meas.IterTime)
		}
	}
}

func TestMemoryCalibration(t *testing.T) {
	// Ground-truth peak exceeds the analytical estimate (fragmentation,
	// transients) but by a bounded margin — Sailor's ~5.5% error band.
	cfg := model.OPT350M()
	prof, err := profiler.Collect(cfg, []core.GPUType{core.A100}, nil, profiler.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(cfg, prof)
	e := New(cfg)
	plan := uniformPlan(core.A100, zoneA, 2, 4, 1, 2, cfg.Layers)
	est, err := s.Estimate(plan)
	if err != nil {
		t.Fatal(err)
	}
	meas, err := e.Measure(plan)
	if err != nil {
		t.Fatal(err)
	}
	if meas.PeakMemory <= est.PeakMemory {
		t.Errorf("real peak %d should exceed analytical %d", meas.PeakMemory, est.PeakMemory)
	}
	rel := float64(meas.PeakMemory-est.PeakMemory) / float64(meas.PeakMemory)
	if rel > 0.15 {
		t.Errorf("analytical memory off by %.1f%%, want under 15%%", 100*rel)
	}
}

func TestStragglerPipelineDominates(t *testing.T) {
	cfg := model.OPT350M()
	e := New(cfg)
	pure := uniformPlan(core.A100, zoneA, 2, 2, 2, 2, cfg.Layers)
	mixed := uniformPlan(core.A100, zoneA, 2, 2, 2, 2, cfg.Layers)
	// Pipeline 1 (replica index 1) runs on V100s end to end.
	for i := range mixed.Stages {
		mixed.Stages[i].Replicas[1].GPU = core.V100
	}
	ep, err := e.Measure(pure)
	if err != nil {
		t.Fatal(err)
	}
	em, err := e.Measure(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if em.IterTime <= ep.IterTime {
		t.Errorf("V100 pipeline must gate the iteration: %v <= %v", em.IterTime, ep.IterTime)
	}
}

func TestCrossRegionContention(t *testing.T) {
	// Two stage rings crossing the same region boundary contend; the
	// analytical simulator does not model this, the ground truth does.
	cfg := model.OPT350M()
	e := New(cfg)
	one := uniformPlan(core.A100, zoneA, 2, 4, 1, 2, cfg.Layers)
	for i := range one.Stages {
		one.Stages[i].Replicas[2].Zone = zoneW
		one.Stages[i].Replicas[3].Zone = zoneW
	}
	inZone := uniformPlan(core.A100, zoneA, 2, 4, 1, 2, cfg.Layers)
	ez, err := e.Measure(inZone)
	if err != nil {
		t.Fatal(err)
	}
	ec, err := e.Measure(one)
	if err != nil {
		t.Fatal(err)
	}
	if ec.IterTime <= ez.IterTime {
		t.Error("cross-region DP must be slower in ground truth too")
	}
	if ec.EgressCost <= 0 {
		t.Error("cross-region plan must bill egress")
	}
}

func TestMeasureThroughputOOM(t *testing.T) {
	cfg := model.GPTNeo27B()
	e := New(cfg)
	plan := uniformPlan(core.V100, zoneA, 2, 2, 1, 4, cfg.Layers)
	if _, err := e.MeasureThroughput(plan); err == nil || !strings.Contains(err.Error(), "OOM") {
		t.Errorf("want OOM error, got %v", err)
	}
}

func TestMeasureRejectsInvalidPlan(t *testing.T) {
	e := New(model.OPT350M())
	if _, err := e.Measure(core.Plan{}); err == nil {
		t.Error("want validation error")
	}
}

func TestPerIterationOverheadPresent(t *testing.T) {
	// Even a tiny single-GPU plan pays the fixed framework overhead.
	cfg := model.OPT350M()
	e := New(cfg)
	plan := uniformPlan(core.GH200, zoneA, 1, 1, 1, 32, cfg.Layers)
	m, err := e.Measure(plan)
	if err != nil {
		t.Fatal(err)
	}
	if m.IterTime < perIterOverheadSec {
		t.Errorf("iteration %v cannot undercut the fixed overhead", m.IterTime)
	}
}
