package trace

// Composable scenario overlays: pure transformations layered over a base
// trace with Compose. Each primitive models one market behaviour the base
// families do not — spot-price spikes squeezing capacity for a window,
// correlated multi-zone failures, and demand autoscaling that moves the
// fleet's per-job GPU cap with the trace — and every overlay preserves the
// replay invariants FuzzTraceApply pins: output events stay stably sorted,
// availability never goes negative (clamped stepwise), and CountAt agrees
// with PoolAt at every boundary.
//
// The subtle contract is the clamp interaction: an overlay that removes
// capacity and later restores it cannot blindly add back what it took,
// because base reclamations inside the window clamp at zero and a blind
// restore would mint capacity the base trace never had. Overlays therefore
// close their windows by *levelling*: the restore delta is computed as
// (reference level) − (current level) at the window's end, where the
// reference is the trace as it stood before the overlay applied. Stepwise
// clamping is order-preserving (a ≤ b implies clamp(a+d) ≤ clamp(b+d)), so
// after the window closes the composed trace replays the base exactly —
// TestOverlayWindowParity pins this.
//
// Overlay times are horizon fractions, like the scenario families' event
// times, so composed scenarios compress cleanly under -horizon overrides.

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/core"
)

// Overlay is one named, pure trace transformation. Apply never mutates its
// input; Compose chains overlays left to right.
type Overlay struct {
	// Name identifies the overlay; a composed scenario is registered as
	// "<base>+<overlay>[+<overlay>...]".
	Name string
	// Apply returns the transformed trace.
	Apply func(in *Trace) *Trace
}

// Compose layers overlays over a base trace, left to right, and returns a
// canonical (stably sorted, clamp-consistent) trace. The base is never
// mutated. Compose output satisfies the same invariants FuzzTraceApply
// checks on raw traces — FuzzComposeApply pins that for arbitrary bases.
func Compose(base *Trace, overlays ...Overlay) *Trace {
	out := base.Clone()
	out.sortEvents()
	for _, ov := range overlays {
		out = ov.Apply(out)
		out.sortEvents()
		for i := range out.CapEvents {
			if out.CapEvents[i].GPUs < 0 {
				out.CapEvents[i].GPUs = 0
			}
		}
	}
	return out
}

// traceCells lists the (zone, GPU type) series a trace mentions, in first
// appearance order — the deterministic iteration order overlays use.
func traceCells(t *Trace) []struct {
	z core.Zone
	g core.GPUType
} {
	type cell struct {
		z core.Zone
		g core.GPUType
	}
	seen := map[cell]bool{}
	var out []struct {
		z core.Zone
		g core.GPUType
	}
	for _, e := range t.Events {
		c := cell{e.Zone, e.GPU}
		if !seen[c] {
			seen[c] = true
			out = append(out, struct {
				z core.Zone
				g core.GPUType
			}{e.Zone, e.GPU})
		}
	}
	return out
}

// clampFrac bounds a horizon fraction to [0, 1].
func clampFrac(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// PriceSpike models a spot-market price spike: for the window
// [start, end] (horizon fractions), every availability series loses
// ceil(level × severity) GPUs at the window start, and at the window end
// each series is levelled back to its pre-overlay trajectory. Base events
// inside the window still apply (the market keeps moving under the spike),
// and the close-by-levelling rule keeps the post-window replay identical
// to the base even when in-window reclamations clamped at zero.
func PriceSpike(start, end, severity float64) Overlay {
	return Overlay{
		Name: "price-spike",
		Apply: func(in *Trace) *Trace {
			start, end = clampFrac(start), clampFrac(end)
			if end <= start || severity <= 0 {
				return in.Clone()
			}
			ref := in
			out := in.Clone()
			s := time.Duration(float64(out.Horizon) * start)
			e := time.Duration(float64(out.Horizon) * end)
			for _, c := range traceCells(ref) {
				lvl := ref.CountAt(s, c.z, c.g)
				take := int(math.Ceil(float64(lvl) * severity))
				if take > 0 {
					out.Events = append(out.Events, Event{At: s, Zone: c.z, GPU: c.g, Delta: -take})
				}
			}
			out.sortEvents()
			for _, c := range traceCells(ref) {
				if d := ref.CountAt(e, c.z, c.g) - out.CountAt(e, c.z, c.g); d != 0 {
					out.Events = append(out.Events, Event{At: e, Zone: c.z, GPU: c.g, Delta: d})
				}
			}
			out.sortEvents()
			return out
		},
	}
}

// CorrelatedFailure models a correlated multi-zone outage: at the `at`
// horizon fraction every affected zone (all zones the trace mentions when
// none are named — the full-blackout case) goes dark for `dur` of the
// horizon. Base events inside the window for affected zones are removed
// (a dead zone grants nothing), and at recovery each series is levelled
// back to its pre-overlay trajectory, so the post-window replay matches
// the base exactly.
func CorrelatedFailure(at, dur float64, zones ...core.Zone) Overlay {
	return Overlay{
		Name: "correlated-failure",
		Apply: func(in *Trace) *Trace {
			at = clampFrac(at)
			if dur <= 0 {
				return in.Clone()
			}
			ref := in
			out := in.Clone()
			a := time.Duration(float64(out.Horizon) * at)
			r := time.Duration(float64(out.Horizon) * clampFrac(at+dur))
			affected := func(z core.Zone) bool {
				if len(zones) == 0 {
					return true
				}
				for _, zz := range zones {
					if zz == z {
						return true
					}
				}
				return false
			}
			// A dead zone emits nothing: drop its base events inside the
			// outage window.
			kept := out.Events[:0]
			for _, e := range out.Events {
				if affected(e.Zone) && e.At >= a && e.At < r {
					continue
				}
				kept = append(kept, e)
			}
			out.Events = kept
			// Blackout: each affected series drops to zero at the outage
			// instant.
			for _, c := range traceCells(ref) {
				if !affected(c.z) {
					continue
				}
				out.sortEvents()
				if lvl := out.CountAt(a, c.z, c.g); lvl > 0 {
					out.Events = append(out.Events, Event{At: a, Zone: c.z, GPU: c.g, Delta: -lvl})
				}
			}
			out.sortEvents()
			// Recovery: level each affected series back to the reference
			// trajectory at the window's end.
			for _, c := range traceCells(ref) {
				if !affected(c.z) {
					continue
				}
				if d := ref.CountAt(r, c.z, c.g) - out.CountAt(r, c.z, c.g); d != 0 {
					out.Events = append(out.Events, Event{At: r, Zone: c.z, GPU: c.g, Delta: d})
				}
			}
			out.sortEvents()
			return out
		},
	}
}

// CapPoint is one step of a demand-autoscaling schedule: at the Frac
// horizon fraction, the fleet's per-job GPU cap becomes Scale × the
// trace's peak total availability (rounded, floored at 1 GPU when the
// scale is positive; a non-positive scale removes the cap).
type CapPoint struct {
	Frac  float64
	Scale float64
}

// DemandAutoscale models demand-driven quota movement: the schedule's cap
// points become CapEvents on the trace, which the fleet replay path
// applies through Ledger.SetJobCap — shrinking the cap mid-trace evicts
// oversized leases in admission order and forces replans, exactly like a
// capacity loss. Scales are relative to the trace's peak total
// availability, so the schedule tracks -base overrides.
func DemandAutoscale(points ...CapPoint) Overlay {
	return Overlay{
		Name: "autoscale",
		Apply: func(in *Trace) *Trace {
			out := in.Clone()
			peak := out.PeakGPUs()
			for _, p := range points {
				gpus := 0
				if p.Scale > 0 {
					gpus = int(math.Round(p.Scale * float64(peak)))
					if gpus < 1 {
						gpus = 1
					}
				}
				out.CapEvents = append(out.CapEvents, CapEvent{
					At:   time.Duration(float64(out.Horizon) * clampFrac(p.Frac)),
					GPUs: gpus,
				})
			}
			out.sortEvents()
			return out
		},
	}
}

// ComposedScenario wraps a base scenario with overlays as a new registry
// entry named "<base>+<overlay>[+...]": the composed trace is
// Compose(base.TraceWith(seed, opts), overlays...), so composed scenarios
// stay pure functions of (seed, opts) and name-resolve in every CLI that
// speaks ScenarioByName.
func ComposedScenario(base Scenario, overlays ...Overlay) Scenario {
	names := make([]string, len(overlays))
	for i, ov := range overlays {
		names[i] = ov.Name
	}
	suffix := strings.Join(names, "+")
	return Scenario{
		Name:        base.Name + "+" + suffix,
		Description: fmt.Sprintf("%s, overlaid with %s", base.Description, suffix),
		GPUs:        base.GPUs,
		Defaults:    base.Defaults,
		gen: func(seed int64, o ScenarioOpts) *Trace {
			return Compose(base.gen(seed, o), overlays...)
		},
	}
}
