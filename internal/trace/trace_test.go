package trace

import (
	"testing"
	"time"

	"repro/internal/core"
)

func TestGCPA100TraceShape(t *testing.T) {
	tr, zoneA, zoneB := GCPA100Trace(42)
	if tr.Horizon != 8*time.Hour {
		t.Fatalf("horizon = %v, want 8h", tr.Horizon)
	}
	// Figure 2 shape: zone A reaches the full 8 GPUs only near hour 7...
	endA := tr.CountAt(tr.Horizon, zoneA, core.A100)
	if endA != 8 {
		t.Errorf("zone A final count = %d, want 8", endA)
	}
	atSixHours := tr.CountAt(6*time.Hour, zoneA, core.A100)
	if atSixHours >= 8 {
		t.Errorf("zone A should not reach 8 before hour 7, has %d at 6h", atSixHours)
	}
	// ... and zone B never attains the request.
	for at := time.Duration(0); at <= tr.Horizon; at += 10 * time.Minute {
		if n := tr.CountAt(at, zoneB, core.A100); n >= 8 {
			t.Fatalf("zone B reached %d GPUs at %v; should stay below 8", n, at)
		}
	}
}

func TestCountNeverNegative(t *testing.T) {
	tr, zoneA, zoneB := GCPA100Trace(7)
	for at := time.Duration(0); at <= tr.Horizon; at += 5 * time.Minute {
		for _, z := range []core.Zone{zoneA, zoneB} {
			if n := tr.CountAt(at, z, core.A100); n < 0 {
				t.Fatalf("negative availability %d at %v in %s", n, at, z)
			}
		}
	}
}

func TestTraceIsDeterministic(t *testing.T) {
	a, za, _ := GCPA100Trace(1)
	b, _, _ := GCPA100Trace(1)
	if len(a.Events) != len(b.Events) {
		t.Fatalf("same seed produced different traces: %d vs %d events", len(a.Events), len(b.Events))
	}
	if a.CountAt(4*time.Hour, za, core.A100) != b.CountAt(4*time.Hour, za, core.A100) {
		t.Error("same seed must reproduce identical counts")
	}
}

func TestPoolAt(t *testing.T) {
	tr, zoneA, _ := GCPA100Trace(42)
	p := tr.PoolAt(tr.Horizon)
	if got := p.Available(zoneA, core.A100); got != 8 {
		t.Errorf("PoolAt(end) zone A = %d, want 8", got)
	}
}

func TestSyntheticAndSample(t *testing.T) {
	z := core.Zone{Region: "r", Name: "r-a"}
	tr := Synthetic(time.Hour,
		Event{At: 30 * time.Minute, Zone: z, GPU: core.V100, Delta: 4},
		Event{At: 10 * time.Minute, Zone: z, GPU: core.V100, Delta: 2},
		Event{At: 45 * time.Minute, Zone: z, GPU: core.V100, Delta: -1},
	)
	// Events must be sorted regardless of insertion order.
	if tr.Events[0].At != 10*time.Minute {
		t.Fatalf("events not sorted: %+v", tr.Events)
	}
	pts := tr.Sample(z, core.V100, 15*time.Minute)
	// Samples at 0/15/30/45/60 min; events at exactly t are included.
	want := []int{0, 2, 6, 5, 5}
	if len(pts) != 5 {
		t.Fatalf("Sample returned %d points, want 5", len(pts))
	}
	for i, w := range want {
		if pts[i].Count != w {
			t.Errorf("sample %d = %d, want %d", i, pts[i].Count, w)
		}
	}
}
