package trace

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// fuzzZones and fuzzGPUs are the alphabets the fuzzer indexes into. The
// invariant checks query every (zone, gpu) combination, so pairs a decoded
// event sequence happens not to mention exercise the no-events lookup path.
var fuzzZones = []core.Zone{
	{Region: "us-central1", Name: "us-central1-a"},
	{Region: "us-central1", Name: "us-central1-b"},
	{Region: "europe-west4", Name: "europe-west4-a"},
}

var fuzzGPUs = []core.GPUType{core.A100, core.V100}

// decodeEvents turns fuzz bytes into an arbitrary event sequence: times out
// of order and possibly past the horizon, deltas negative and over-reclaiming,
// zones and GPU types mixed freely. 4 bytes per event.
func decodeEvents(data []byte) []Event {
	var evs []Event
	for i := 0; i+4 <= len(data) && len(evs) < 256; i += 4 {
		at := time.Duration(int(data[i])|int(data[i+1])<<8) * time.Second * 30
		z := fuzzZones[int(data[i+2]>>4)%len(fuzzZones)]
		g := fuzzGPUs[int(data[i+2])%len(fuzzGPUs)]
		delta := int(int8(data[i+3]))
		evs = append(evs, Event{At: at, Zone: z, GPU: g, Delta: delta})
	}
	return evs
}

// FuzzTraceApply feeds arbitrary event sequences through Synthetic and
// checks the replay invariants: events sort stably, availability is never
// negative, CountAt and PoolAt agree at every event boundary, and replay is
// deterministic.
func FuzzTraceApply(f *testing.F) {
	f.Add([]byte{})
	// One grant.
	f.Add([]byte{10, 0, 0x00, 8})
	// Grant then over-reclaim then grant again.
	f.Add([]byte{10, 0, 0x00, 2, 20, 0, 0x00, 0x80, 30, 0, 0x00, 2})
	// Out-of-order times across two zones.
	f.Add([]byte{200, 0, 0x10, 4, 10, 0, 0x10, 4, 100, 0, 0x01, 0xFC})
	// Ties at the same instant.
	f.Add([]byte{50, 0, 0x00, 3, 50, 0, 0x00, 0xFE, 50, 0, 0x21, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		evs := decodeEvents(data)
		horizon := 4 * time.Hour
		tr := Synthetic(horizon, evs...)

		if len(tr.Events) != len(evs) {
			t.Fatalf("Synthetic dropped events: %d in, %d out", len(evs), len(tr.Events))
		}
		// Time-sorted, and stable: events sharing an At keep input order.
		for i := 1; i < len(tr.Events); i++ {
			if tr.Events[i].At < tr.Events[i-1].At {
				t.Fatalf("events out of order at %d", i)
			}
		}
		next := map[time.Duration]int{}
		for _, e := range tr.Events {
			idx := next[e.At]
			// Find the idx-th input event with this At; it must equal e.
			seen := 0
			found := false
			for _, in := range evs {
				if in.At != e.At {
					continue
				}
				if seen == idx {
					if in != e {
						t.Fatalf("tie at %v not stable: got %+v want %+v", e.At, e, in)
					}
					found = true
					break
				}
				seen++
			}
			if !found {
				t.Fatalf("event %+v has no matching input", e)
			}
			next[e.At]++
		}

		// Availability invariants at every event boundary, straddling
		// midpoints, and the horizon, for every (zone, gpu) pair — including
		// pairs the trace never mentions.
		ats := []time.Duration{0, horizon}
		for _, e := range tr.Events {
			ats = append(ats, e.At, e.At+time.Second)
		}
		for _, at := range ats {
			pool := tr.PoolAt(at)
			for _, z := range fuzzZones {
				for _, g := range fuzzGPUs {
					n := tr.CountAt(at, z, g)
					if n < 0 {
						t.Fatalf("negative CountAt(%v, %s, %s) = %d", at, z, g, n)
					}
					if p := pool.Available(z, g); p != n {
						t.Fatalf("replay views disagree at %v for (%s,%s): CountAt=%d PoolAt=%d",
							at, z, g, n, p)
					}
				}
			}
		}

		// Replaying the same inputs yields the identical trace.
		tr2 := Synthetic(horizon, evs...)
		for i := range tr.Events {
			if tr.Events[i] != tr2.Events[i] {
				t.Fatalf("replay not deterministic at event %d", i)
			}
		}
	})
}

// FuzzComposeApply extends FuzzTraceApply to overlaid traces — satellite 1's
// property under fuzzing: for arbitrary base event sequences and overlay
// parameters, Compose output preserves every invariant a raw trace has
// (stable time order, clamped non-negative availability, CountAt == PoolAt,
// non-negative caps) and composes deterministically.
func FuzzComposeApply(f *testing.F) {
	f.Add([]byte{}, uint8(0), uint8(128), uint8(255))
	f.Add([]byte{10, 0, 0x00, 8, 100, 0, 0x10, 6, 150, 0, 0x00, 0x80}, uint8(60), uint8(180), uint8(128))
	f.Add([]byte{50, 0, 0x00, 3, 50, 0, 0x00, 0xFE}, uint8(255), uint8(0), uint8(7))

	f.Fuzz(func(t *testing.T, data []byte, a, b, sev uint8) {
		base := Synthetic(4*time.Hour, decodeEvents(data)...)
		lo, hi := float64(a)/255, float64(b)/255
		if hi < lo {
			lo, hi = hi, lo
		}
		overlays := []Overlay{
			PriceSpike(lo, hi, float64(sev)/255),
			CorrelatedFailure(lo, hi-lo, fuzzZones[int(sev)%len(fuzzZones)]),
			DemandAutoscale(CapPoint{Frac: lo, Scale: 1}, CapPoint{Frac: hi, Scale: float64(sev) / 255}),
		}
		got := Compose(base, overlays...)

		for i := 1; i < len(got.Events); i++ {
			if got.Events[i].At < got.Events[i-1].At {
				t.Fatalf("composed events out of order at %d", i)
			}
		}
		for i, c := range got.CapEvents {
			if i > 0 && c.At < got.CapEvents[i-1].At {
				t.Fatalf("composed cap events out of order at %d", i)
			}
			if c.GPUs < 0 {
				t.Fatalf("composed cap %d negative: %d", i, c.GPUs)
			}
		}
		ats := []time.Duration{0, got.Horizon}
		for _, e := range got.Events {
			ats = append(ats, e.At, e.At+time.Second)
		}
		for _, at := range ats {
			pool := got.PoolAt(at)
			for _, z := range fuzzZones {
				for _, g := range fuzzGPUs {
					n := got.CountAt(at, z, g)
					if n < 0 {
						t.Fatalf("negative composed CountAt(%v, %s, %s) = %d", at, z, g, n)
					}
					if p := pool.Available(z, g); p != n {
						t.Fatalf("composed replay views disagree at %v for (%s,%s): CountAt=%d PoolAt=%d",
							at, z, g, n, p)
					}
				}
			}
		}
		// Composition is deterministic and never mutates the base.
		again := Compose(base, overlays...)
		if len(again.Events) != len(got.Events) || len(again.CapEvents) != len(got.CapEvents) {
			t.Fatal("Compose not deterministic")
		}
		for i := range got.Events {
			if again.Events[i] != got.Events[i] {
				t.Fatalf("Compose not deterministic at event %d", i)
			}
		}
	})
}

// FuzzTraceFileRoundTrip pins the external trace-file schema under fuzzing:
// Save∘Load is the identity on canonical documents, Load rejects unknown
// schema versions by name, and the CSV import of the same events
// canonicalizes to the identical JSON document.
func FuzzTraceFileRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{10, 0, 0x00, 8})
	f.Add([]byte{10, 0, 0x00, 2, 20, 0, 0x00, 0x80, 30, 0, 0x00, 2})
	f.Add([]byte{200, 0, 0x10, 4, 10, 0, 0x10, 4, 100, 0, 0x01, 0xFC})
	f.Add([]byte{50, 0, 0x00, 3, 50, 0, 0x21, 1, 0xFF, 0xFF, 0x00, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		evs := decodeEvents(data)
		if len(evs) == 0 {
			// Validation rejects empty traces; that path is covered by unit
			// tests, not the round-trip property.
			return
		}
		tr := Synthetic(4*time.Hour, evs...)
		if last := tr.Events[len(tr.Events)-1].At; last > tr.Horizon {
			tr.Horizon = last
		}
		file := &File{Name: "fuzz", Trace: tr}
		doc, err := Save(file)
		if err != nil {
			t.Fatalf("Save rejected a valid trace: %v", err)
		}
		got, err := Load(doc)
		if err != nil {
			t.Fatalf("Load rejected Save output: %v", err)
		}
		doc2, err := Save(got)
		if err != nil {
			t.Fatalf("re-Save: %v", err)
		}
		if string(doc) != string(doc2) {
			t.Fatalf("decode∘encode not the identity:\n%s\nvs\n%s", doc, doc2)
		}
		if got.Trace.Horizon != tr.Horizon || len(got.Trace.Events) != len(tr.Events) {
			t.Fatalf("round trip lost events or horizon")
		}

		// Version rejection by name: the same document with a bumped version
		// tag must fail mentioning both versions.
		bumped := strings.Replace(string(doc), fmt.Sprintf(`"v": %d`, FileVersion),
			fmt.Sprintf(`"v": %d`, FileVersion+1), 1)
		if _, err := Load([]byte(bumped)); err == nil {
			t.Fatal("Load accepted a bumped schema version")
		} else if !strings.Contains(err.Error(), fmt.Sprintf("version %d", FileVersion+1)) {
			t.Fatalf("version rejection does not name the version: %v", err)
		}

		// CSV import canonicalizes to the identical JSON document.
		var csv strings.Builder
		fmt.Fprintf(&csv, "# name: fuzz\n# horizon: %ds\n", int64(tr.Horizon/time.Second))
		csv.WriteString("kind,at_seconds,region,zone,gpu,delta\n")
		for _, e := range tr.Events {
			fmt.Fprintf(&csv, "event,%d,%s,%s,%s,%d\n",
				int64(e.At/time.Second), e.Zone.Region, e.Zone.Name, e.GPU, e.Delta)
		}
		fromCSV, err := LoadCSV([]byte(csv.String()))
		if err != nil {
			t.Fatalf("LoadCSV rejected generated log: %v", err)
		}
		csvDoc, err := Save(fromCSV)
		if err != nil {
			t.Fatalf("Save of CSV import: %v", err)
		}
		if string(csvDoc) != string(doc) {
			t.Fatalf("CSV import does not canonicalize to the JSON document:\n%s\nvs\n%s", csvDoc, doc)
		}
	})
}
