package trace

import (
	"testing"
	"time"

	"repro/internal/core"
)

// fuzzZones and fuzzGPUs are the alphabets the fuzzer indexes into. The
// invariant checks query every (zone, gpu) combination, so pairs a decoded
// event sequence happens not to mention exercise the no-events lookup path.
var fuzzZones = []core.Zone{
	{Region: "us-central1", Name: "us-central1-a"},
	{Region: "us-central1", Name: "us-central1-b"},
	{Region: "europe-west4", Name: "europe-west4-a"},
}

var fuzzGPUs = []core.GPUType{core.A100, core.V100}

// decodeEvents turns fuzz bytes into an arbitrary event sequence: times out
// of order and possibly past the horizon, deltas negative and over-reclaiming,
// zones and GPU types mixed freely. 4 bytes per event.
func decodeEvents(data []byte) []Event {
	var evs []Event
	for i := 0; i+4 <= len(data) && len(evs) < 256; i += 4 {
		at := time.Duration(int(data[i])|int(data[i+1])<<8) * time.Second * 30
		z := fuzzZones[int(data[i+2]>>4)%len(fuzzZones)]
		g := fuzzGPUs[int(data[i+2])%len(fuzzGPUs)]
		delta := int(int8(data[i+3]))
		evs = append(evs, Event{At: at, Zone: z, GPU: g, Delta: delta})
	}
	return evs
}

// FuzzTraceApply feeds arbitrary event sequences through Synthetic and
// checks the replay invariants: events sort stably, availability is never
// negative, CountAt and PoolAt agree at every event boundary, and replay is
// deterministic.
func FuzzTraceApply(f *testing.F) {
	f.Add([]byte{})
	// One grant.
	f.Add([]byte{10, 0, 0x00, 8})
	// Grant then over-reclaim then grant again.
	f.Add([]byte{10, 0, 0x00, 2, 20, 0, 0x00, 0x80, 30, 0, 0x00, 2})
	// Out-of-order times across two zones.
	f.Add([]byte{200, 0, 0x10, 4, 10, 0, 0x10, 4, 100, 0, 0x01, 0xFC})
	// Ties at the same instant.
	f.Add([]byte{50, 0, 0x00, 3, 50, 0, 0x00, 0xFE, 50, 0, 0x21, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		evs := decodeEvents(data)
		horizon := 4 * time.Hour
		tr := Synthetic(horizon, evs...)

		if len(tr.Events) != len(evs) {
			t.Fatalf("Synthetic dropped events: %d in, %d out", len(evs), len(tr.Events))
		}
		// Time-sorted, and stable: events sharing an At keep input order.
		for i := 1; i < len(tr.Events); i++ {
			if tr.Events[i].At < tr.Events[i-1].At {
				t.Fatalf("events out of order at %d", i)
			}
		}
		next := map[time.Duration]int{}
		for _, e := range tr.Events {
			idx := next[e.At]
			// Find the idx-th input event with this At; it must equal e.
			seen := 0
			found := false
			for _, in := range evs {
				if in.At != e.At {
					continue
				}
				if seen == idx {
					if in != e {
						t.Fatalf("tie at %v not stable: got %+v want %+v", e.At, e, in)
					}
					found = true
					break
				}
				seen++
			}
			if !found {
				t.Fatalf("event %+v has no matching input", e)
			}
			next[e.At]++
		}

		// Availability invariants at every event boundary, straddling
		// midpoints, and the horizon, for every (zone, gpu) pair — including
		// pairs the trace never mentions.
		ats := []time.Duration{0, horizon}
		for _, e := range tr.Events {
			ats = append(ats, e.At, e.At+time.Second)
		}
		for _, at := range ats {
			pool := tr.PoolAt(at)
			for _, z := range fuzzZones {
				for _, g := range fuzzGPUs {
					n := tr.CountAt(at, z, g)
					if n < 0 {
						t.Fatalf("negative CountAt(%v, %s, %s) = %d", at, z, g, n)
					}
					if p := pool.Available(z, g); p != n {
						t.Fatalf("replay views disagree at %v for (%s,%s): CountAt=%d PoolAt=%d",
							at, z, g, n, p)
					}
				}
			}
		}

		// Replaying the same inputs yields the identical trace.
		tr2 := Synthetic(horizon, evs...)
		for i := range tr.Events {
			if tr.Events[i] != tr2.Events[i] {
				t.Fatalf("replay not deterministic at event %d", i)
			}
		}
	})
}
