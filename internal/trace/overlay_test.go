package trace

import (
	"testing"
	"time"

	"repro/internal/core"
)

// checkTraceInvariants asserts the replay invariants FuzzTraceApply pins on
// raw traces: events (and cap events) time-sorted, availability never
// negative, CountAt agreeing with PoolAt at every boundary, caps
// non-negative. Compose output must satisfy all of them — satellite 1.
func checkTraceInvariants(t *testing.T, tr *Trace) {
	t.Helper()
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].At < tr.Events[i-1].At {
			t.Fatalf("events out of order at %d: %v after %v", i, tr.Events[i].At, tr.Events[i-1].At)
		}
	}
	for i, c := range tr.CapEvents {
		if i > 0 && c.At < tr.CapEvents[i-1].At {
			t.Fatalf("cap events out of order at %d", i)
		}
		if c.GPUs < 0 {
			t.Fatalf("cap event %d negative: %d", i, c.GPUs)
		}
	}
	ats := []time.Duration{0, tr.Horizon}
	for _, e := range tr.Events {
		ats = append(ats, e.At, e.At+time.Second)
	}
	for _, at := range ats {
		pool := tr.PoolAt(at)
		for _, z := range fuzzZones {
			for _, g := range fuzzGPUs {
				n := tr.CountAt(at, z, g)
				if n < 0 {
					t.Fatalf("negative CountAt(%v, %s, %s) = %d", at, z, g, n)
				}
				if p := pool.Available(z, g); p != n {
					t.Fatalf("replay views disagree at %v for (%s,%s): CountAt=%d PoolAt=%d", at, z, g, n, p)
				}
			}
		}
	}
}

// overlayBase is a two-zone trace with an in-window reclamation that clamps
// — the shape that breaks naive "restore what you took" overlays.
func overlayBase() *Trace {
	return Synthetic(4*time.Hour,
		Event{At: 0, Zone: fuzzZones[0], GPU: core.A100, Delta: 8},
		Event{At: 30 * time.Minute, Zone: fuzzZones[1], GPU: core.A100, Delta: 6},
		// Inside the overlay windows below: an over-reclaim that clamps at
		// zero once a spike or outage has already drained the series.
		Event{At: 2 * time.Hour, Zone: fuzzZones[0], GPU: core.A100, Delta: -5},
		Event{At: 2*time.Hour + 30*time.Minute, Zone: fuzzZones[0], GPU: core.A100, Delta: 4},
		Event{At: 3*time.Hour + 30*time.Minute, Zone: fuzzZones[1], GPU: core.A100, Delta: 2},
	)
}

// TestOverlayWindowParity pins the close-by-levelling contract: after an
// overlay's window ends, the composed trace replays the base exactly, even
// though in-window clamping made the naive restore delta wrong.
func TestOverlayWindowParity(t *testing.T) {
	base := overlayBase()
	for _, tc := range []struct {
		name string
		ov   Overlay
		end  time.Duration
	}{
		{"price-spike", PriceSpike(0.25, 0.75, 0.9), 3 * time.Hour},
		{"correlated-failure", CorrelatedFailure(0.25, 0.5), 3 * time.Hour},
		{"zoned-failure", CorrelatedFailure(0.25, 0.5, fuzzZones[0]), 3 * time.Hour},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := Compose(base, tc.ov)
			checkTraceInvariants(t, got)
			for at := tc.end; at <= base.Horizon; at += 15 * time.Minute {
				for _, z := range fuzzZones {
					for _, g := range fuzzGPUs {
						if b, c := base.CountAt(at, z, g), got.CountAt(at, z, g); b != c {
							t.Fatalf("post-window divergence at %v (%s,%s): base=%d composed=%d", at, z, g, b, c)
						}
					}
				}
			}
		})
	}
}

func TestPriceSpikeReducesWindow(t *testing.T) {
	base := overlayBase()
	got := Compose(base, PriceSpike(0.25, 0.75, 0.5))
	at := 90 * time.Minute // inside [1h, 3h)
	for _, z := range fuzzZones[:2] {
		b, c := base.CountAt(at, z, core.A100), got.CountAt(at, z, core.A100)
		if c >= b {
			t.Fatalf("spike did not reduce (%s): base=%d composed=%d", z, b, c)
		}
	}
	// Base is untouched (Compose clones).
	if base.CountAt(at, fuzzZones[0], core.A100) != 8 {
		t.Fatal("Compose mutated the base trace")
	}
}

func TestCorrelatedFailureBlackout(t *testing.T) {
	base := overlayBase()
	got := Compose(base, CorrelatedFailure(0.25, 0.25, fuzzZones[0]))
	during := 90 * time.Minute // inside [1h, 2h)
	if n := got.CountAt(during, fuzzZones[0], core.A100); n != 0 {
		t.Fatalf("affected zone not dark during outage: %d", n)
	}
	if b, c := base.CountAt(during, fuzzZones[1], core.A100), got.CountAt(during, fuzzZones[1], core.A100); b != c {
		t.Fatalf("unaffected zone disturbed: base=%d composed=%d", b, c)
	}
}

func TestDemandAutoscaleCaps(t *testing.T) {
	base := overlayBase() // peak total availability: 7 + 8 = 15 at 3h30
	got := Compose(base, DemandAutoscale(
		CapPoint{Frac: 0, Scale: 1},
		CapPoint{Frac: 0.5, Scale: 0.25},
		CapPoint{Frac: 0.75, Scale: 0},
	))
	if peak := base.PeakGPUs(); peak != 15 {
		t.Fatalf("peak = %d, want 15", peak)
	}
	if cap, ok := got.CapAt(0); !ok || cap != 15 {
		t.Fatalf("cap at 0 = %d/%v, want 15", cap, ok)
	}
	if cap, ok := got.CapAt(2 * time.Hour); !ok || cap != 4 { // round(0.25×15) = 4
		t.Fatalf("cap at 2h = %d/%v, want 4", cap, ok)
	}
	if cap, ok := got.CapAt(3 * time.Hour); !ok || cap != 0 { // scale 0 removes the cap
		t.Fatalf("cap at 3h = %d/%v, want 0 (uncapped)", cap, ok)
	}
	if len(base.CapEvents) != 0 {
		t.Fatal("Compose mutated the base trace's cap events")
	}
}

// TestComposedScenariosRegistered checks the composed entries name-resolve
// and equal a manual Compose of their base — the registry wiring, not the
// overlay math.
func TestComposedScenariosRegistered(t *testing.T) {
	cases := []struct {
		name string
		base Scenario
		ovs  []Overlay
	}{
		{"preemption-storm+autoscale", PreemptionStorm(), []Overlay{DemandAutoscale(
			CapPoint{Frac: 0, Scale: 1},
			CapPoint{Frac: 0.35, Scale: 0.25},
			CapPoint{Frac: 0.7, Scale: 0.6},
		)}},
		{"geo-shift+correlated-failure", GeoShift(), []Overlay{CorrelatedFailure(0.55, 0.15)}},
		{"hetero-arrivals+price-spike", HeteroArrivals(), []Overlay{PriceSpike(0.5, 0.7, 0.5)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, ok := ScenarioByName(tc.name)
			if !ok {
				t.Fatalf("composed scenario %q not registered", tc.name)
			}
			got := s.Trace(42)
			want := Compose(tc.base.TraceWith(42, tc.base.Defaults), tc.ovs...)
			if len(got.Events) != len(want.Events) {
				t.Fatalf("event count %d, want %d", len(got.Events), len(want.Events))
			}
			for i := range got.Events {
				if got.Events[i] != want.Events[i] {
					t.Fatalf("event %d: got %+v want %+v", i, got.Events[i], want.Events[i])
				}
			}
			if len(got.CapEvents) != len(want.CapEvents) {
				t.Fatalf("cap count %d, want %d", len(got.CapEvents), len(want.CapEvents))
			}
			checkTraceInvariants(t, got)
		})
	}
}

// TestComposeScenarioInvariants is the satellite-1 property test in table
// form: for every registered scenario (composed ones included) across a
// seed sweep, Compose output passes the same invariants FuzzTraceApply
// checks on raw traces.
func TestComposeScenarioInvariants(t *testing.T) {
	overlays := [][]Overlay{
		nil,
		{PriceSpike(0.2, 0.6, 0.7)},
		{CorrelatedFailure(0.3, 0.2)},
		{PriceSpike(0.1, 0.5, 0.4), CorrelatedFailure(0.4, 0.3), DemandAutoscale(CapPoint{Frac: 0.5, Scale: 0.5})},
	}
	for _, s := range Scenarios() {
		for seed := int64(1); seed <= 3; seed++ {
			for _, ovs := range overlays {
				checkTraceInvariants(t, Compose(s.Trace(seed), ovs...))
			}
		}
	}
}

// TestOverlayNoOpWindows pins the degenerate-parameter branches: an empty
// or inverted window, zero severity, zero duration, and out-of-range
// horizon fractions (clamped to [0, 1]) all reduce to a clone of the base.
func TestOverlayNoOpWindows(t *testing.T) {
	base := overlayBase()
	noops := map[string]Overlay{
		"spike empty window":   PriceSpike(0.6, 0.4, 0.5),
		"spike zero severity":  PriceSpike(0.2, 0.8, 0),
		"failure zero dur":     CorrelatedFailure(0.5, 0),
		"spike clamped window": PriceSpike(-3, -1, 0.5), // clamps to [0, 0]: empty
	}
	for name, ov := range noops {
		got := Compose(base, ov)
		want := Compose(base)
		if len(got.Events) != len(want.Events) {
			t.Errorf("%s: %d events, want %d (a no-op)", name, len(got.Events), len(want.Events))
			continue
		}
		for i := range got.Events {
			if got.Events[i] != want.Events[i] {
				t.Errorf("%s: event %d = %+v, want %+v", name, i, got.Events[i], want.Events[i])
			}
		}
	}
	// An over-range window clamps to the full horizon: reduced mid-window,
	// levelled back to the base at the horizon itself.
	got := Compose(base, PriceSpike(-0.5, 1.5, 0.5))
	checkTraceInvariants(t, got)
	if got.PoolAt(base.Horizon/2).TotalGPUs() >= base.PoolAt(base.Horizon/2).TotalGPUs() {
		t.Errorf("full-horizon spike did not reduce mid-window availability")
	}
	if got.PoolAt(base.Horizon).TotalGPUs() != base.PoolAt(base.Horizon).TotalGPUs() {
		t.Errorf("full-horizon spike did not level back at the horizon")
	}
}

// TestComposeClampsNegativeCaps: a hostile overlay emitting negative cap
// events is sanitized — Compose clamps caps at 0 (unlimited), never
// letting a negative cap reach the fleet ledger.
func TestComposeClampsNegativeCaps(t *testing.T) {
	hostile := Overlay{Name: "hostile", Apply: func(in *Trace) *Trace {
		out := in.Clone()
		out.CapEvents = append(out.CapEvents, CapEvent{At: time.Hour, GPUs: -4})
		return out
	}}
	got := Compose(overlayBase(), hostile)
	for _, c := range got.CapEvents {
		if c.GPUs < 0 {
			t.Fatalf("negative cap survived Compose: %+v", c)
		}
	}
	checkTraceInvariants(t, got)
}

// TestGPUTypes: distinct types in sorted order, regardless of event order.
func TestGPUTypes(t *testing.T) {
	tr := Synthetic(time.Hour,
		Event{At: 0, Zone: fuzzZones[0], GPU: core.V100, Delta: 2},
		Event{At: 0, Zone: fuzzZones[1], GPU: core.A100, Delta: 4},
		Event{At: 30 * time.Minute, Zone: fuzzZones[0], GPU: core.V100, Delta: -1},
	)
	got := tr.GPUTypes()
	if len(got) != 2 || got[0] != core.A100 || got[1] != core.V100 {
		t.Fatalf("GPUTypes = %v, want [%s %s]", got, core.A100, core.V100)
	}
}
