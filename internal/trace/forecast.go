package trace

// Availability forecasting. A Forecaster watches the sequence of
// availability snapshots a job (or a fleet) has seen and predicts which
// pools it is most likely to see next — the signal the serving layer's
// speculative replan prefetch runs on.
//
// The model is deliberately tiny and fully deterministic:
//
//   - Cyclic histories (diurnal-wave's 24h capacity wave, a preemption
//     storm replaying day after day) are detected by suffix periodicity
//     over the canonical pool renderings: the smallest period p whose last
//     two-to-three repetitions match exactly. When a period is found, the
//     predicted next pool is the one that followed the current position in
//     the previous cycle — an exact prediction for a truly periodic trace.
//   - Non-cyclic histories (the adversarial generator's downtime and churn
//     traces, a quantized-random preemption storm) degrade to a frequency
//     ranking: the distinct pools seen so far ordered by how often they
//     recur, most-recent first on ties. Recurring levels (a storm always
//     ramping back to its base capacity) dominate that ranking, so the
//     fallback still lands prefetches on the states the trace keeps
//     revisiting.
//
// Forecast(k) returns up to k candidate pools, the periodic prediction
// first when one exists. The forecaster never panics on any input history
// and is a pure function of the observations it was fed: two forecasters
// fed the same snapshots return byte-identical forecasts.

import (
	"sort"

	"repro/internal/cluster"
)

// forecastMaxHistory bounds the observation window. Period inference and
// frequency ranking both run over this suffix, so an unboundedly long
// replay keeps the forecaster O(1) in memory and per-observation cost.
const forecastMaxHistory = 512

// Forecaster predicts the next availability snapshots of an observed
// sequence. The zero value is not usable; call NewForecaster. Not safe for
// concurrent use — callers serialize observations (the serving layer holds
// its own lock).
type Forecaster struct {
	// keys is the observed history, most recent last, as canonical pool
	// renderings (cluster.Pool.String — the same zone/type/count cells the
	// planner's warm cache packs into its pool-shape keys).
	keys  []string
	pools map[string]*cluster.Pool
	// count/lastSeen back the frequency ranking: occurrences of each
	// distinct pool in the window, and the observation index of its most
	// recent appearance. seq numbers observations monotonically even as the
	// window slides.
	count    map[string]int
	lastSeen map[string]int
	seq      int
	// dedupReset mirrors Trace.DistinctPools: after a total blackout the
	// next snapshot always records, even if it equals the pre-blackout one
	// (capacity returning is a fresh deployment).
	dedupReset bool
}

// NewForecaster returns an empty forecaster.
func NewForecaster() *Forecaster {
	return &Forecaster{
		pools:    map[string]*cluster.Pool{},
		count:    map[string]int{},
		lastSeen: map[string]int{},
	}
}

// ObservePool records one availability snapshot, with the same coalescing
// Trace.DistinctPools applies to raw events: empty pools are skipped (but
// reset the dedup state), and a snapshot equal to the previous observation
// is skipped. The pool is cloned; callers may keep mutating theirs.
func (f *Forecaster) ObservePool(p *cluster.Pool) {
	if p == nil || p.TotalGPUs() == 0 {
		f.dedupReset = true
		return
	}
	k := p.String()
	if !f.dedupReset && len(f.keys) > 0 && f.keys[len(f.keys)-1] == k {
		return
	}
	f.dedupReset = false
	if len(f.keys) == forecastMaxHistory {
		old := f.keys[0]
		copy(f.keys, f.keys[1:])
		f.keys = f.keys[:len(f.keys)-1]
		if f.count[old]--; f.count[old] == 0 {
			delete(f.count, old)
			delete(f.pools, old)
			delete(f.lastSeen, old)
		}
	}
	f.keys = append(f.keys, k)
	if _, ok := f.pools[k]; !ok {
		f.pools[k] = p.Clone()
	}
	f.count[k]++
	f.lastSeen[k] = f.seq
	f.seq++
}

// Observations reports how many distinct snapshots are in the window.
func (f *Forecaster) Observations() int { return len(f.keys) }

// Period returns the inferred cycle length of the observed sequence, in
// observations — the smallest p whose last min(n, 3p) observations repeat
// with period p — or 0 when no cycle has completed at least twice. The
// two-full-periods requirement is what "after one full observed period" of
// a repeating trace guarantees: the first pass through the cycle is the
// observation, the second confirms it.
func (f *Forecaster) Period() int {
	n := len(f.keys)
	for p := 1; 2*p <= n; p++ {
		w := 3 * p
		if w > n {
			w = n
		}
		ok := true
		for i := n - w + p; i < n; i++ {
			if f.keys[i] != f.keys[i-p] {
				ok = false
				break
			}
		}
		if ok {
			return p
		}
	}
	return 0
}

// Forecast returns up to k pools the sequence is most likely to visit
// next: the periodic prediction first when Period finds a cycle, then the
// frequency ranking (occurrences descending, most recently seen first,
// canonical rendering ascending) until k candidates are filled. Returned
// pools are clones; callers own them. An empty history forecasts nothing.
func (f *Forecaster) Forecast(k int) []*cluster.Pool {
	if k <= 0 || len(f.keys) == 0 {
		return nil
	}
	picked := make([]string, 0, k)
	seen := map[string]bool{}
	if p := f.Period(); p > 0 {
		next := f.keys[len(f.keys)-p]
		picked = append(picked, next)
		seen[next] = true
	}
	if len(picked) < k {
		ranked := make([]string, 0, len(f.count))
		for key := range f.count {
			ranked = append(ranked, key)
		}
		sort.Slice(ranked, func(i, j int) bool {
			a, b := ranked[i], ranked[j]
			if f.count[a] != f.count[b] {
				return f.count[a] > f.count[b]
			}
			if f.lastSeen[a] != f.lastSeen[b] {
				return f.lastSeen[a] > f.lastSeen[b]
			}
			return a < b
		})
		for _, key := range ranked {
			if len(picked) == k {
				break
			}
			if !seen[key] {
				seen[key] = true
				picked = append(picked, key)
			}
		}
	}
	out := make([]*cluster.Pool, len(picked))
	for i, key := range picked {
		out[i] = f.pools[key].Clone()
	}
	return out
}
