package trace

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cluster"
)

// feedPools drives a sequence of snapshots through a forecaster.
func feedPools(f *Forecaster, pools []*cluster.Pool) {
	for _, p := range pools {
		f.ObservePool(p)
	}
}

// poolKeys renders a forecast for comparison.
func poolKeys(pools []*cluster.Pool) []string {
	out := make([]string, len(pools))
	for i, p := range pools {
		out[i] = p.String()
	}
	return out
}

// TestForecasterCyclicScenarios is the cyclic property of the ISSUE: for
// every registered cyclic scenario × seeds, once the forecaster has
// observed one full period of the cycle (a period is observed once it has
// repeated — a cycle is indistinguishable from a transient before then, so
// Period() demands two matching passes), the top-K forecast contains the
// true next pool at every subsequent step.
//
// diurnal-wave is periodic within a single long trace (the 24h cosine
// repeats), so a 72h horizon exposes the cycle natively. preemption-storm
// is quantized-recurring rather than sequence-periodic within one trace
// (troughs are drawn randomly per storm), so its cyclic structure is the
// storm replaying day after day: the stream is the trace's distinct-pool
// sequence repeated.
func TestForecasterCyclicScenarios(t *testing.T) {
	const topK = 3
	for _, seed := range []int64{1, 2, 3} {
		cases := []struct {
			name   string
			stream []*cluster.Pool
		}{
			{"diurnal-wave", DiurnalWave().TraceWith(seed, ScenarioOpts{Horizon: 72 * 3600e9}).DistinctPools()},
		}
		storm := PreemptionStorm().Trace(seed).DistinctPools()
		repeated := append(append(append([]*cluster.Pool{}, storm...), storm...), storm...)
		cases = append(cases, struct {
			name   string
			stream []*cluster.Pool
		}{"preemption-storm(repeated)", repeated})

		for _, tc := range cases {
			if len(tc.stream) < 4 {
				t.Fatalf("seed %d %s: degenerate stream (%d pools)", seed, tc.name, len(tc.stream))
			}
			f := NewForecaster()
			detected := false
			for i, p := range tc.stream {
				if i > 0 && f.Period() > 0 {
					detected = true
					got := poolKeys(f.Forecast(topK))
					want := p.String()
					found := false
					for _, k := range got {
						if k == want {
							found = true
							break
						}
					}
					if !found {
						t.Fatalf("seed %d %s step %d: top-%d forecast misses the true next pool\nwant: %q\ngot:  %q",
							seed, tc.name, i, topK, want, got)
					}
				}
				f.ObservePool(p)
			}
			if !detected {
				t.Fatalf("seed %d %s: period never detected over %d observations", seed, tc.name, len(tc.stream))
			}
		}
	}
}

// TestForecasterAdversarialGoldens feeds the committed adversarial traces
// (no cyclic structure by construction) through the forecaster: it must
// never panic and must degrade to the pure frequency ranking.
func TestForecasterAdversarialGoldens(t *testing.T) {
	for _, name := range []string{"adv-downtime-1", "adv-churn-1"} {
		data, err := os.ReadFile(filepath.Join("..", "..", "cmd", "sailor-replay", "testdata", name+".trace.json"))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tf, err := Load(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		pools := tf.Trace.DistinctPools()
		if len(pools) == 0 {
			t.Fatalf("%s: no distinct pools", name)
		}
		f := NewForecaster()
		feedPools(f, pools)
		got := f.Forecast(3)
		if len(got) == 0 || len(got) > 3 {
			t.Fatalf("%s: forecast size %d out of range", name, len(got))
		}
		if f.Period() == 0 {
			// Frequency fallback: recompute the ranking independently over
			// the deduped observation stream and require an exact match.
			count := map[string]int{}
			last := map[string]int{}
			var keys []string
			prev := ""
			for i, p := range pools {
				k := p.String()
				if k == prev {
					continue
				}
				prev = k
				if count[k] == 0 {
					keys = append(keys, k)
				}
				count[k]++
				last[k] = i
			}
			// Selection sort is fine at golden scale; ordering matches the
			// forecaster: count desc, most recent desc, rendering asc.
			for i := 0; i < len(keys); i++ {
				for j := i + 1; j < len(keys); j++ {
					a, b := keys[i], keys[j]
					swap := false
					switch {
					case count[b] != count[a]:
						swap = count[b] > count[a]
					case last[b] != last[a]:
						swap = last[b] > last[a]
					default:
						swap = b < a
					}
					if swap {
						keys[i], keys[j] = keys[j], keys[i]
					}
				}
			}
			want := keys
			if len(want) > 3 {
				want = want[:3]
			}
			gotKeys := poolKeys(got)
			if len(gotKeys) != len(want) {
				t.Fatalf("%s: frequency ranking size: got %d want %d", name, len(gotKeys), len(want))
			}
			for i := range want {
				if gotKeys[i] != want[i] {
					t.Fatalf("%s: frequency ranking diverged at %d:\ngot  %q\nwant %q", name, i, gotKeys[i], want[i])
				}
			}
		}
	}
}

// TestForecasterDeterminism: two forecasters fed the same stream forecast
// identically, and forecasts do not alias internal state.
func TestForecasterDeterminism(t *testing.T) {
	pools := PreemptionStorm().Trace(7).DistinctPools()
	a, b := NewForecaster(), NewForecaster()
	feedPools(a, pools)
	feedPools(b, pools)
	ka, kb := poolKeys(a.Forecast(4)), poolKeys(b.Forecast(4))
	if len(ka) != len(kb) {
		t.Fatalf("forecast sizes differ: %d vs %d", len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("forecasts diverge at %d: %q vs %q", i, ka[i], kb[i])
		}
	}
	// Mutating a returned pool must not corrupt later forecasts.
	a.Forecast(1)[0].Set(cluster.GCPZone("us-central1", 'a'), "A100-40", 999)
	again := poolKeys(a.Forecast(4))
	for i := range ka {
		if again[i] != ka[i] {
			t.Fatalf("forecast changed after caller mutation at %d", i)
		}
	}
}

// TestForecasterCoalescing pins the DistinctPools-compatible observation
// semantics: consecutive duplicates collapse, empty pools are skipped but
// reset the dedup state, and the window stays bounded.
func TestForecasterCoalescing(t *testing.T) {
	z := cluster.GCPZone("us-central1", 'a')
	mk := func(n int) *cluster.Pool { return cluster.NewPool().Set(z, "A100-40", n) }

	f := NewForecaster()
	if got := f.Forecast(3); got != nil {
		t.Fatalf("empty forecaster forecast = %d pools, want nil", len(got))
	}
	f.ObservePool(mk(8))
	f.ObservePool(mk(8)) // consecutive duplicate: skipped
	if f.Observations() != 1 {
		t.Fatalf("observations after duplicate = %d, want 1", f.Observations())
	}
	f.ObservePool(cluster.NewPool()) // blackout: skipped, resets dedup
	f.ObservePool(mk(8))             // re-records after the blackout
	if f.Observations() != 2 {
		t.Fatalf("observations after blackout re-record = %d, want 2", f.Observations())
	}
	if got := f.Forecast(0); got != nil {
		t.Fatalf("forecast(0) returned %d pools, want nil", len(got))
	}

	// Window bound: distinct levels far past the cap keep the window fixed.
	g := NewForecaster()
	for i := 0; i < forecastMaxHistory+100; i++ {
		g.ObservePool(mk(1 + i%600))
	}
	if g.Observations() != forecastMaxHistory {
		t.Fatalf("window = %d, want %d", g.Observations(), forecastMaxHistory)
	}
	if got := g.Forecast(2); len(got) != 2 {
		t.Fatalf("bounded-window forecast size = %d, want 2", len(got))
	}
}
