package trace

// The scenario engine: named families of availability traces synthesized
// deterministically from a seed. Each scenario models one of the dynamic
// cluster behaviours the paper targets (§2, §5.2) — preemption storms,
// diurnal capacity waves, zone outages with recovery, staggered
// heterogeneous arrivals, and geo-distributed capacity shifts — and returns
// a *Trace the elastic controller can replay unchanged.
//
// Scenarios are pure functions of (seed, ScenarioOpts): the same inputs
// reproduce the identical event sequence, which the golden determinism
// tests in internal/runtime rely on.

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
)

// ScenarioOpts scales a scenario family. Zero fields fall back to the
// scenario's defaults, so ScenarioOpts{} always means "the canonical shape".
type ScenarioOpts struct {
	// Horizon is the trace length.
	Horizon time.Duration
	// Base is the steady-state GPU count of the scenario's primary zone.
	Base int
}

func (o ScenarioOpts) merged(def ScenarioOpts) ScenarioOpts {
	if o.Horizon <= 0 {
		o.Horizon = def.Horizon
	}
	if o.Base <= 0 {
		o.Base = def.Base
	}
	return o
}

// Scenario is a named, seeded trace generator.
type Scenario struct {
	// Name identifies the scenario in registries and CLIs.
	Name string
	// Description is a one-line summary for listings.
	Description string
	// GPUs are the GPU types the scenario's events mention, in the order a
	// profiling campaign should cover them.
	GPUs []core.GPUType
	// Defaults are the canonical ScenarioOpts of the family.
	Defaults ScenarioOpts

	gen func(seed int64, o ScenarioOpts) *Trace
}

// Trace synthesizes the scenario's canonical trace from a seed.
func (s Scenario) Trace(seed int64) *Trace { return s.gen(seed, s.Defaults) }

// TraceWith synthesizes a scaled variant; zero opt fields keep the defaults.
func (s Scenario) TraceWith(seed int64, o ScenarioOpts) *Trace {
	return s.gen(seed, o.merged(s.Defaults))
}

// Scenarios returns every registered scenario, sorted by name.
func Scenarios() []Scenario {
	out := append([]Scenario(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ScenarioByName looks a scenario up by its registry name.
func ScenarioByName(name string) (Scenario, bool) {
	for _, s := range registry {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

var registry = []Scenario{
	GCPA100Scenario(),
	PreemptionStorm(),
	DiurnalWave(),
	ZoneOutage(),
	HeteroArrivals(),
	GeoShift(),
	// Composed scenarios: base families layered with overlays (overlay.go).
	// Each stays a pure function of (seed, opts) — Compose is deterministic —
	// so the golden determinism contract extends to them unchanged.
	ComposedScenario(PreemptionStorm(), DemandAutoscale(
		CapPoint{Frac: 0, Scale: 1},
		CapPoint{Frac: 0.35, Scale: 0.25},
		CapPoint{Frac: 0.7, Scale: 0.6},
	)),
	ComposedScenario(GeoShift(), CorrelatedFailure(0.55, 0.15)),
	ComposedScenario(HeteroArrivals(), PriceSpike(0.5, 0.7, 0.5)),
}

// series tracks one (zone, gpu) availability level and emits the delta
// events that move it. Targets are clamped at zero and deltas are derived
// from the tracked level, so a series can never over-reclaim — CountAt and
// PoolAt agree on every prefix of the trace.
type series struct {
	t    *Trace
	z    core.Zone
	g    core.GPUType
	have int
}

func (s *series) set(at time.Duration, target int) {
	if target < 0 {
		target = 0
	}
	if d := target - s.have; d != 0 {
		s.t.Events = append(s.t.Events, Event{At: at, Zone: s.z, GPU: s.g, Delta: d})
		s.have = target
	}
}

// ramp moves the series to target in `steps` evenly spaced events ending at
// `end`, starting after `start`.
func (s *series) ramp(start, end time.Duration, target, steps int) {
	if steps < 1 {
		steps = 1
	}
	span := end - start
	from := s.have
	for i := 1; i <= steps; i++ {
		at := start + span*time.Duration(i)/time.Duration(steps)
		s.set(at, from+(target-from)*i/steps)
	}
}

// GCPA100Scenario wraps the paper's Figure-2 trace (GCPA100Trace) as a
// registry entry so the replay tooling can run it by name.
func GCPA100Scenario() Scenario {
	return Scenario{
		Name:        "gcp-a100",
		Description: "paper Figure 2: two GCP zones chasing 8 A100s for 8 hours",
		GPUs:        []core.GPUType{core.A100},
		Defaults:    ScenarioOpts{Horizon: 8 * time.Hour, Base: 8},
		gen: func(seed int64, o ScenarioOpts) *Trace {
			t, _, _ := gcpA100Trace(seed, o.Horizon, o.Base)
			return t
		},
	}
}

// PreemptionStorm models spot-market churn: capacity repeatedly collapses to
// a fraction of the base level and recovers in bursts. The post-storm level
// always returns to exactly Base and the trough levels are drawn from a
// small quantized set, so availability snapshots recur across the trace —
// the workload warm-start replanning is built to exploit.
func PreemptionStorm() Scenario {
	return Scenario{
		Name:        "preemption-storm",
		Description: "repeated spot preemptions to quantized troughs with burst recovery",
		GPUs:        []core.GPUType{core.A100},
		Defaults:    ScenarioOpts{Horizon: 6 * time.Hour, Base: 16},
		gen: func(seed int64, o ScenarioOpts) *Trace {
			rng := rand.New(rand.NewSource(seed))
			t := &Trace{Horizon: o.Horizon}
			s := &series{t: t, z: cluster.GCPZone("us-central1", 'a'), g: core.A100}
			// Times are horizon fractions (one unit = a minute at the
			// default 6h) so Horizon overrides compress the storm cadence.
			unit := o.Horizon / 360
			// Initial grant arrives in two bursts.
			s.ramp(0, o.Horizon/18, o.Base, 2)
			troughs := []int{o.Base / 4, o.Base / 2, 3 * o.Base / 4}
			at := o.Horizon/9 + time.Duration(rng.Intn(20))*unit
			for at < o.Horizon-o.Horizon/12 {
				s.set(at, troughs[rng.Intn(len(troughs))])
				// Recovery back to base in 2-3 bursts over ~20 minutes.
				s.ramp(at+o.Horizon/72, at+o.Horizon/18, o.Base, 2+rng.Intn(2))
				at += 5*o.Horizon/36 + time.Duration(rng.Intn(40))*unit
			}
			t.sortEvents()
			return t
		},
	}
}

// DiurnalWave models datacenter-local demand cycles: allocatable capacity
// follows a 24-hour cosine between a night-time peak (Base) and a daytime
// floor (Base/4), quantized to hourly steps with seeded phase jitter.
func DiurnalWave() Scenario {
	return Scenario{
		Name:        "diurnal-wave",
		Description: "24h cosine capacity wave between Base and Base/4, hourly steps",
		GPUs:        []core.GPUType{core.A100},
		Defaults:    ScenarioOpts{Horizon: 24 * time.Hour, Base: 16},
		gen: func(seed int64, o ScenarioOpts) *Trace {
			rng := rand.New(rand.NewSource(seed))
			t := &Trace{Horizon: o.Horizon}
			s := &series{t: t, z: cluster.GCPZone("us-central1", 'a'), g: core.A100}
			floor := o.Base / 4
			if floor < 1 {
				floor = 1
			}
			phase := float64(rng.Intn(6)) // hours
			for h := 0; float64(h) <= o.Horizon.Hours(); h++ {
				frac := 0.5 * (1 + math.Cos(2*math.Pi*(float64(h)-phase)/24))
				target := floor + int(math.Round(frac*float64(o.Base-floor)))
				s.set(time.Duration(h)*time.Hour, target)
			}
			t.sortEvents()
			return t
		},
	}
}

// ZoneOutage models a full availability-zone failure: two zones ramp to
// Base each, one blacks out at a seeded time, and capacity returns in
// stages after one to two hours. The surviving zone jitters by one GPU
// around Base to keep the monitor busy with near-no-op events.
func ZoneOutage() Scenario {
	return Scenario{
		Name:        "zone-outage",
		Description: "one of two zones blacks out and recovers in stages",
		GPUs:        []core.GPUType{core.A100},
		Defaults:    ScenarioOpts{Horizon: 8 * time.Hour, Base: 8},
		gen: func(seed int64, o ScenarioOpts) *Trace {
			rng := rand.New(rand.NewSource(seed))
			t := &Trace{Horizon: o.Horizon}
			a := &series{t: t, z: cluster.GCPZone("us-central1", 'a'), g: core.A100}
			b := &series{t: t, z: cluster.GCPZone("us-central1", 'b'), g: core.A100}
			// Event times are fractions of the horizon (one "minute" unit is
			// 1/480th, i.e. a real minute at the default 8h), so a Horizon
			// override compresses the whole shape instead of pushing events
			// past the end of the trace.
			unit := o.Horizon / 480
			a.ramp(0, o.Horizon/16, o.Base, 2)
			b.ramp(o.Horizon/32, 3*o.Horizon/32, o.Base, 2)
			outage := o.Horizon/4 + time.Duration(rng.Intn(120))*unit
			b.set(outage, 0)
			recovery := outage + o.Horizon/8 + time.Duration(rng.Intn(60))*unit
			b.ramp(recovery, recovery+o.Horizon/12, o.Base, 2+rng.Intn(3))
			// Zone A wobbles by one GPU a few times, always returning to Base.
			for i := 0; i < 3; i++ {
				at := time.Duration(1+rng.Intn(6)) * o.Horizon / 8
				a.set(at, o.Base-1)
				a.set(at+o.Horizon/48, o.Base)
			}
			t.sortEvents()
			return t
		},
	}
}

// HeteroArrivals models a heterogeneous grant arriving in stages: A100s are
// allocated early in one zone, a larger V100 pool joins from a sibling zone
// hours later (the A100/V100 mixes of §5.2), and the V100s see one
// spot-style partial preemption with recovery.
func HeteroArrivals() Scenario {
	return Scenario{
		Name:        "hetero-arrivals",
		Description: "early A100s joined by staggered V100 arrivals and a partial preemption",
		GPUs:        []core.GPUType{core.A100, core.V100},
		Defaults:    ScenarioOpts{Horizon: 6 * time.Hour, Base: 8},
		gen: func(seed int64, o ScenarioOpts) *Trace {
			rng := rand.New(rand.NewSource(seed))
			t := &Trace{Horizon: o.Horizon}
			a := &series{t: t, z: cluster.GCPZone("us-central1", 'a'), g: core.A100}
			v := &series{t: t, z: cluster.GCPZone("us-central1", 'b'), g: core.V100}
			// Times are horizon fractions (one unit = a minute at the
			// default 6h) so Horizon overrides compress the shape.
			unit := o.Horizon / 360
			a.ramp(0, o.Horizon/6, o.Base, 3)
			vBase := 2 * o.Base
			start := o.Horizon/4 + time.Duration(rng.Intn(60))*unit
			v.ramp(start, start+o.Horizon/6, vBase, 3+rng.Intn(2))
			// One partial V100 preemption with full recovery.
			hit := start + o.Horizon/3 + time.Duration(rng.Intn(30))*unit
			if hit < o.Horizon-o.Horizon/6 {
				v.set(hit, vBase/2)
				v.ramp(hit+o.Horizon/18, hit+5*o.Horizon/36, vBase, 2)
			}
			t.sortEvents()
			return t
		},
	}
}

// GeoShift models follow-the-sun capacity across two regions: the US region
// starts near its peak while Europe idles, and over the horizon the two
// swap levels in staggered steps — pipelines may span regions (H5) while DP
// groups stay inside one.
func GeoShift() Scenario {
	return Scenario{
		Name:        "geo-shift",
		Description: "follow-the-sun capacity swap between us-central1 and europe-west4",
		GPUs:        []core.GPUType{core.A100},
		Defaults:    ScenarioOpts{Horizon: 12 * time.Hour, Base: 12},
		gen: func(seed int64, o ScenarioOpts) *Trace {
			rng := rand.New(rand.NewSource(seed))
			t := &Trace{Horizon: o.Horizon}
			us := &series{t: t, z: cluster.GCPZone("us-central1", 'a'), g: core.A100}
			eu := &series{t: t, z: cluster.GCPZone("europe-west4", 'a'), g: core.A100}
			lo := o.Base / 3
			if lo < 1 {
				lo = 1
			}
			us.set(0, o.Base)
			eu.set(0, lo)
			steps := 4
			// Horizon fractions (one unit = a minute at the default 12h).
			unit := o.Horizon / 720
			swapStart := o.Horizon/4 + time.Duration(rng.Intn(120))*unit
			swapEnd := swapStart + o.Horizon/4
			// EU gains lead US losses by a half step: capacity overlaps
			// briefly rather than dipping, as a scheduler would stage it.
			span := swapEnd - swapStart
			for i := 1; i <= steps; i++ {
				at := swapStart + span*time.Duration(i)/time.Duration(steps)
				eu.set(at-span/(2*time.Duration(steps)), lo+(o.Base-lo)*i/steps)
				us.set(at, o.Base-(o.Base-lo)*i/steps)
			}
			t.sortEvents()
			return t
		},
	}
}
