package trace

// External trace files: a wire-style versioned JSON schema (plus a CSV
// import path) for availability traces, so real cloud availability and
// spot-preemption logs replay through sailor-replay and the fleet path
// exactly like the built-in scenario families.
//
// The document is the same self-describing envelope internal/wire speaks —
// {"v":1,"kind":"trace","body":{...}} — but the codec lives here rather
// than in wire because wire imports this package; wire re-exports it as
// MarshalTrace/UnmarshalTrace so the two surfaces stay in lockstep (a test
// in internal/wire pins FileVersion == wire.Version).
//
// Encoding is canonical and deterministic: events are stably sorted by
// timestamp (insertion order preserved within one instant — order matters
// there, because reclamations clamp stepwise), cap events likewise, and the
// DTOs contain no maps, so Save(Load(doc)) reproduces a canonical document
// byte-for-byte. Decoding rejects unknown schema versions and kinds by
// name, and validates the replay invariants (horizon positive, events
// within it, named zones and GPU types, non-negative caps) so a malformed
// log fails loudly at the boundary instead of corrupting a replay.

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
)

// FileVersion is the trace-file schema version this build speaks. It moves
// in lockstep with wire.Version; decoders reject every other version.
const FileVersion = 1

// fileKind is the envelope kind of a trace document.
const fileKind = "trace"

// File is a named external availability trace — the unit sailor-replay
// -trace loads and sailor-advgen writes.
type File struct {
	// Name identifies the trace in ledgers and listings.
	Name string
	// Description is a one-line summary of where the trace came from.
	Description string
	// Trace is the canonical (sorted) event sequence.
	Trace *Trace
}

// fileEnvelope mirrors wire.Envelope so the trace package stays free of a
// dependency on internal/wire (which imports this package).
type fileEnvelope struct {
	V    int             `json:"v"`
	Kind string          `json:"kind"`
	Body json.RawMessage `json:"body"`
}

type fileBody struct {
	Name        string      `json:"name"`
	Description string      `json:"description,omitempty"`
	HorizonNS   int64       `json:"horizon_ns"`
	Events      []fileEvent `json:"events"`
	CapEvents   []fileCap   `json:"cap_events,omitempty"`
}

type fileEvent struct {
	AtNS   int64  `json:"at_ns"`
	Region string `json:"region"`
	Zone   string `json:"zone"`
	GPU    string `json:"gpu"`
	Delta  int    `json:"delta"`
}

type fileCap struct {
	AtNS int64 `json:"at_ns"`
	GPUs int   `json:"gpus"`
}

// Save encodes a trace file as a canonical versioned JSON document:
// events stably sorted by timestamp, struct fields in declaration order,
// two-space indentation, trailing newline. Equal files marshal to
// identical bytes, which is what lets adversarial worst cases be committed
// as goldens and diffed meaningfully.
func Save(f *File) ([]byte, error) {
	if f == nil || f.Trace == nil {
		return nil, fmt.Errorf("trace: Save: nil trace file")
	}
	if f.Name == "" {
		return nil, fmt.Errorf("trace: Save: trace file needs a name")
	}
	t := f.Trace.Clone()
	t.sortEvents()
	if err := validateTrace(t); err != nil {
		return nil, fmt.Errorf("trace: Save %q: %w", f.Name, err)
	}
	body := fileBody{
		Name:        f.Name,
		Description: f.Description,
		HorizonNS:   t.Horizon.Nanoseconds(),
		Events:      make([]fileEvent, len(t.Events)),
	}
	for i, e := range t.Events {
		body.Events[i] = fileEvent{
			AtNS:   e.At.Nanoseconds(),
			Region: e.Zone.Region,
			Zone:   e.Zone.Name,
			GPU:    string(e.GPU),
			Delta:  e.Delta,
		}
	}
	for _, c := range t.CapEvents {
		body.CapEvents = append(body.CapEvents, fileCap{AtNS: c.At.Nanoseconds(), GPUs: c.GPUs})
	}
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("trace: Save %q: %w", f.Name, err)
	}
	doc, err := json.MarshalIndent(fileEnvelope{V: FileVersion, Kind: fileKind, Body: raw}, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("trace: Save %q: %w", f.Name, err)
	}
	return append(doc, '\n'), nil
}

// Load decodes a versioned trace document, rejecting unknown schema
// versions and kinds by name, validating the replay invariants, and
// canonicalizing the event order.
func Load(data []byte) (*File, error) {
	var env fileEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("trace: decode envelope: %w", err)
	}
	if env.V != FileVersion {
		return nil, fmt.Errorf("trace: unsupported trace-file schema version %d (this build speaks v%d)", env.V, FileVersion)
	}
	if env.Kind != fileKind {
		return nil, fmt.Errorf("trace: kind %q, want %q", env.Kind, fileKind)
	}
	dec := json.NewDecoder(bytes.NewReader(env.Body))
	dec.DisallowUnknownFields()
	var body fileBody
	if err := dec.Decode(&body); err != nil {
		return nil, fmt.Errorf("trace: decode trace body: %w", err)
	}
	if body.Name == "" {
		return nil, fmt.Errorf("trace: trace file has no name")
	}
	t := &Trace{Horizon: time.Duration(body.HorizonNS)}
	for _, e := range body.Events {
		t.Events = append(t.Events, Event{
			At:    time.Duration(e.AtNS),
			Zone:  core.Zone{Region: e.Region, Name: e.Zone},
			GPU:   core.GPUType(e.GPU),
			Delta: e.Delta,
		})
	}
	for _, c := range body.CapEvents {
		t.CapEvents = append(t.CapEvents, CapEvent{At: time.Duration(c.AtNS), GPUs: c.GPUs})
	}
	t.sortEvents()
	if err := validateTrace(t); err != nil {
		return nil, fmt.Errorf("trace: load %q: %w", body.Name, err)
	}
	return &File{Name: body.Name, Description: body.Description, Trace: t}, nil
}

// validateTrace enforces the replay invariants an external trace must
// satisfy before it may drive a controller or a fleet: a positive horizon,
// at least one event, every timestamp within [0, horizon], and
// non-negative caps. (Availability never going negative needs no check —
// CountAt and PoolAt clamp stepwise by construction.)
func validateTrace(t *Trace) error {
	if t.Horizon <= 0 {
		return fmt.Errorf("horizon %v not positive", t.Horizon)
	}
	if len(t.Events) == 0 {
		return fmt.Errorf("trace has no availability events")
	}
	for i, e := range t.Events {
		if e.At < 0 || e.At > t.Horizon {
			return fmt.Errorf("event %d at %v outside [0, %v]", i, e.At, t.Horizon)
		}
		if e.Zone.Region == "" || e.Zone.Name == "" || e.GPU == "" {
			return fmt.Errorf("event %d names no zone or GPU type", i)
		}
	}
	for i, c := range t.CapEvents {
		if c.At < 0 || c.At > t.Horizon {
			return fmt.Errorf("cap event %d at %v outside [0, %v]", i, c.At, t.Horizon)
		}
		if c.GPUs < 0 {
			return fmt.Errorf("cap event %d sets a negative cap %d", i, c.GPUs)
		}
	}
	return nil
}

// LoadCSV imports a comma-separated availability log and canonicalizes it
// to the same shape Load produces — Save(LoadCSV(csv)) is the canonical
// JSON document of the log. The expected layout:
//
//	# name: my-spot-log            (optional directives before the header)
//	# description: us-central1 spot reclamations, 2024-04
//	# horizon: 8h
//	kind,at_seconds,region,zone,gpu,delta
//	event,0,us-central1,us-central1-a,A100,8
//	event,3600,us-central1,us-central1-a,A100,-3
//	cap,5400,,,,6
//
// Rows with kind "event" are availability deltas; rows with kind "cap" are
// demand-autoscaling directives (region/zone/gpu left empty, delta is the
// per-job GPU cap, 0 = uncapped). A missing horizon directive defaults to
// the last event timestamp.
func LoadCSV(data []byte) (*File, error) {
	name, desc := "csv-import", ""
	var horizon time.Duration
	var rows []string
	for _, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "#") {
			directive := strings.TrimSpace(strings.TrimPrefix(trimmed, "#"))
			key, val, ok := strings.Cut(directive, ":")
			if !ok {
				continue
			}
			val = strings.TrimSpace(val)
			switch strings.TrimSpace(key) {
			case "name":
				name = val
			case "description":
				desc = val
			case "horizon":
				d, err := time.ParseDuration(val)
				if err != nil {
					return nil, fmt.Errorf("trace: csv horizon directive %q: %w", val, err)
				}
				horizon = d
			}
			continue
		}
		if trimmed != "" {
			rows = append(rows, line)
		}
	}
	r := csv.NewReader(strings.NewReader(strings.Join(rows, "\n")))
	r.FieldsPerRecord = 6
	header, err := r.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: csv has no header row: %w", err)
	}
	want := []string{"kind", "at_seconds", "region", "zone", "gpu", "delta"}
	for i, col := range want {
		if i >= len(header) || strings.TrimSpace(header[i]) != col {
			return nil, fmt.Errorf("trace: csv header %v, want %v", header, want)
		}
	}
	t := &Trace{}
	for line := 2; ; line++ {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: %w", line, err)
		}
		at, err := strconv.ParseFloat(strings.TrimSpace(rec[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: bad at_seconds %q", line, rec[1])
		}
		delta, err := strconv.Atoi(strings.TrimSpace(rec[5]))
		if err != nil {
			return nil, fmt.Errorf("trace: csv line %d: bad delta %q", line, rec[5])
		}
		ts := time.Duration(at * float64(time.Second))
		switch kind := strings.TrimSpace(rec[0]); kind {
		case "event":
			t.Events = append(t.Events, Event{
				At:    ts,
				Zone:  core.Zone{Region: strings.TrimSpace(rec[2]), Name: strings.TrimSpace(rec[3])},
				GPU:   core.GPUType(strings.TrimSpace(rec[4])),
				Delta: delta,
			})
		case "cap":
			t.CapEvents = append(t.CapEvents, CapEvent{At: ts, GPUs: delta})
		default:
			return nil, fmt.Errorf("trace: csv line %d: unknown kind %q (want event or cap)", line, kind)
		}
	}
	t.sortEvents()
	if horizon <= 0 {
		if len(t.Events) > 0 {
			horizon = t.Events[len(t.Events)-1].At
		}
		if horizon <= 0 {
			horizon = time.Hour
		}
	}
	t.Horizon = horizon
	if err := validateTrace(t); err != nil {
		return nil, fmt.Errorf("trace: csv import %q: %w", name, err)
	}
	return &File{Name: name, Description: desc, Trace: t}, nil
}
