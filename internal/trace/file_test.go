package trace

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

var (
	fileZoneA = core.Zone{Region: "us-central1", Name: "us-central1-a"}
	fileZoneB = core.Zone{Region: "europe-west4", Name: "europe-west4-a"}
)

func sampleFile() *File {
	return &File{
		Name:        "sample",
		Description: "two zones, one cap move",
		Trace: &Trace{
			Horizon: 2 * time.Hour,
			Events: []Event{
				{At: 0, Zone: fileZoneA, GPU: core.A100, Delta: 8},
				{At: 30 * time.Minute, Zone: fileZoneB, GPU: core.V100, Delta: 4},
				{At: time.Hour, Zone: fileZoneA, GPU: core.A100, Delta: -3},
			},
			CapEvents: []CapEvent{{At: 45 * time.Minute, GPUs: 6}},
		},
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	f := sampleFile()
	doc, err := Save(f)
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(doc)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Name != f.Name || got.Description != f.Description {
		t.Fatalf("metadata: got %q/%q, want %q/%q", got.Name, got.Description, f.Name, f.Description)
	}
	if got.Trace.Horizon != f.Trace.Horizon {
		t.Fatalf("horizon: got %v, want %v", got.Trace.Horizon, f.Trace.Horizon)
	}
	if len(got.Trace.Events) != len(f.Trace.Events) {
		t.Fatalf("events: got %d, want %d", len(got.Trace.Events), len(f.Trace.Events))
	}
	for i := range got.Trace.Events {
		if got.Trace.Events[i] != f.Trace.Events[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, got.Trace.Events[i], f.Trace.Events[i])
		}
	}
	if len(got.Trace.CapEvents) != 1 || got.Trace.CapEvents[0] != f.Trace.CapEvents[0] {
		t.Fatalf("cap events: got %+v", got.Trace.CapEvents)
	}
	// Canonical: re-encoding the decoded file reproduces the bytes.
	doc2, err := Save(got)
	if err != nil {
		t.Fatalf("re-Save: %v", err)
	}
	if string(doc) != string(doc2) {
		t.Fatalf("encoding not canonical:\n%s\nvs\n%s", doc, doc2)
	}
}

func TestTraceFileCanonicalizesOrder(t *testing.T) {
	// Out-of-order events (including a same-instant tie) must encode in the
	// stable time-sorted order: sorted by At, insertion order kept for ties.
	f := &File{
		Name: "unordered",
		Trace: &Trace{
			Horizon: time.Hour,
			Events: []Event{
				{At: 30 * time.Minute, Zone: fileZoneA, GPU: core.A100, Delta: -2},
				{At: 0, Zone: fileZoneA, GPU: core.A100, Delta: 4},
				{At: 30 * time.Minute, Zone: fileZoneA, GPU: core.A100, Delta: 1},
			},
		},
	}
	doc, err := Save(f)
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(doc)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	want := []int{4, -2, 1}
	for i, d := range want {
		if got.Trace.Events[i].Delta != d {
			t.Fatalf("event %d delta = %d, want %d (stable sort violated)", i, got.Trace.Events[i].Delta, d)
		}
	}
	// Save does not mutate its argument.
	if f.Trace.Events[0].At != 30*time.Minute {
		t.Fatal("Save mutated the input trace")
	}
}

func TestTraceFileRejections(t *testing.T) {
	valid, err := Save(sampleFile())
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"unknown version", strings.Replace(string(valid), `"v": 1`, `"v": 2`, 1),
			"unsupported trace-file schema version 2"},
		{"wrong kind", strings.Replace(string(valid), `"kind": "trace"`, `"kind": "plan"`, 1),
			`kind "plan"`},
		{"unknown field", strings.Replace(string(valid), `"name"`, `"bogus_field"`, 1),
			"unknown field"},
		{"not json", "spot log dump", "decode envelope"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load([]byte(tc.doc))
			if err == nil {
				t.Fatalf("Load accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestTraceFileValidation(t *testing.T) {
	base := func() *File { return sampleFile() }
	cases := []struct {
		name   string
		mutate func(*File)
		want   string
	}{
		{"nil trace", func(f *File) { f.Trace = nil }, "nil trace"},
		{"no name", func(f *File) { f.Name = "" }, "needs a name"},
		{"no horizon", func(f *File) { f.Trace.Horizon = 0 }, "not positive"},
		{"no events", func(f *File) { f.Trace.Events = nil }, "no availability events"},
		{"event past horizon", func(f *File) { f.Trace.Events[0].At = 3 * time.Hour }, "outside"},
		{"negative time", func(f *File) { f.Trace.Events[0].At = -time.Minute }, "outside"},
		{"unnamed zone", func(f *File) { f.Trace.Events[0].Zone.Name = "" }, "names no zone"},
		{"unnamed gpu", func(f *File) { f.Trace.Events[0].GPU = "" }, "names no zone"},
		{"cap past horizon", func(f *File) { f.Trace.CapEvents[0].At = 3 * time.Hour }, "outside"},
		{"negative cap", func(f *File) { f.Trace.CapEvents[0].GPUs = -1 }, "negative cap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := base()
			tc.mutate(f)
			if _, err := Save(f); err == nil {
				t.Fatalf("Save accepted %s", tc.name)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

const sampleCSV = `# name: spot-log
# description: imported spot reclamation log
# horizon: 2h
kind,at_seconds,region,zone,gpu,delta
event,0,us-central1,us-central1-a,A100-40,8
event,1800,europe-west4,europe-west4-a,V100-16,4
cap,2700,,,,6
event,3600,us-central1,us-central1-a,A100-40,-3
`

func TestLoadCSV(t *testing.T) {
	f, err := LoadCSV([]byte(sampleCSV))
	if err != nil {
		t.Fatalf("LoadCSV: %v", err)
	}
	if f.Name != "spot-log" || f.Description != "imported spot reclamation log" {
		t.Fatalf("directives not parsed: %q / %q", f.Name, f.Description)
	}
	// The CSV above is the sample file modulo metadata: canonical JSON of
	// both traces must match byte-for-byte (CSV import canonicalizes).
	want := sampleFile()
	want.Name, want.Description = f.Name, f.Description
	wantDoc, err := Save(want)
	if err != nil {
		t.Fatalf("Save want: %v", err)
	}
	gotDoc, err := Save(f)
	if err != nil {
		t.Fatalf("Save got: %v", err)
	}
	if string(gotDoc) != string(wantDoc) {
		t.Fatalf("CSV import does not canonicalize to the sample JSON:\n%s\nvs\n%s", gotDoc, wantDoc)
	}
}

func TestLoadCSVDefaultsHorizon(t *testing.T) {
	csv := "kind,at_seconds,region,zone,gpu,delta\nevent,0,r,z,A100,2\nevent,7200,r,z,A100,-1\n"
	f, err := LoadCSV([]byte(csv))
	if err != nil {
		t.Fatalf("LoadCSV: %v", err)
	}
	if f.Trace.Horizon != 2*time.Hour {
		t.Fatalf("horizon defaulted to %v, want last event at 2h", f.Trace.Horizon)
	}
	if f.Name != "csv-import" {
		t.Fatalf("name defaulted to %q", f.Name)
	}
}

func TestLoadCSVRejections(t *testing.T) {
	cases := []struct {
		name string
		csv  string
		want string
	}{
		{"bad header", "time,zone,a,b,c,d\n", "csv header"},
		{"unknown kind", "kind,at_seconds,region,zone,gpu,delta\nblackout,0,r,z,A100,1\n", "unknown kind"},
		{"bad delta", "kind,at_seconds,region,zone,gpu,delta\nevent,0,r,z,A100,many\n", "bad delta"},
		{"bad time", "kind,at_seconds,region,zone,gpu,delta\nevent,noon,r,z,A100,1\n", "bad at_seconds"},
		{"bad horizon", "# horizon: yesterday\nkind,at_seconds,region,zone,gpu,delta\nevent,0,r,z,A100,1\n", "horizon directive"},
		{"empty", "", "no header"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := LoadCSV([]byte(tc.csv)); err == nil {
				t.Fatalf("LoadCSV accepted %s", tc.name)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestLoadBodyRejections covers boundary failures past the envelope: a
// well-formed envelope whose body is missing a name or fails trace
// validation is rejected with the same clear errors as a hand-built Trace.
func TestLoadBodyRejections(t *testing.T) {
	valid, err := Save(sampleFile())
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"empty name", strings.Replace(string(valid), `"name": "sample"`, `"name": ""`, 1),
			"no name"},
		{"invalid body", strings.Replace(string(valid), `"horizon_ns": 7200000000000`, `"horizon_ns": 1`, 1),
			"outside"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Load([]byte(tc.doc)); err == nil {
				t.Fatalf("Load accepted %s", tc.name)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestLoadCSVEdgeCases: comment lines without a directive colon are
// skipped, an all-t=0 trace falls back to the 1h default horizon, and a
// mid-file malformed row (wrong field count) or a validation failure
// (event beyond an explicit horizon) is rejected.
func TestLoadCSVEdgeCases(t *testing.T) {
	f, err := LoadCSV([]byte("# just a comment\nkind,at_seconds,region,zone,gpu,delta\nevent,0,r,z,A100,2\n"))
	if err != nil {
		t.Fatalf("LoadCSV: %v", err)
	}
	if f.Trace.Horizon != time.Hour {
		t.Errorf("all-t=0 horizon = %v, want the 1h fallback", f.Trace.Horizon)
	}

	if _, err := LoadCSV([]byte("kind,at_seconds,region,zone,gpu,delta\nevent,0,r,z\n")); err == nil {
		t.Error("short row accepted")
	}
	if _, err := LoadCSV([]byte("# horizon: 1h\nkind,at_seconds,region,zone,gpu,delta\nevent,7200,r,z,A100,2\n")); err == nil ||
		!strings.Contains(err.Error(), "outside") {
		t.Errorf("event past explicit horizon: err = %v", err)
	}
}
