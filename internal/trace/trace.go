// Package trace models dynamic GPU availability (paper Figure 2): the
// number of allocatable GPUs per zone fluctuates as capacity frees up and is
// reclaimed. Traces drive the elasticity experiments and the planner's
// re-evaluation cadence.
//
// The paper's trace was collected on GCP in April 2024 by continuously
// requesting 8 A100s in two zones for 8 hours; one zone reached 8 GPUs after
// about 7 hours, the other never did. GCPA100Trace regenerates that shape
// from a seeded stochastic allocator model.
package trace

import (
	"math/rand"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
)

// Event is one availability change: Delta GPUs of a type appear (positive)
// or are reclaimed (negative) in a zone at time At after trace start.
type Event struct {
	At    time.Duration
	Zone  core.Zone
	GPU   core.GPUType
	Delta int
}

// CapEvent is one demand-autoscaling directive: at time At the fleet's
// per-job GPU cap becomes GPUs (0 removes the cap). Cap events ride
// alongside availability events in external trace files and composed
// scenarios; the fleet replay path applies them through
// fleet.Ledger.SetJobCap, evicting oversized leases in admission order.
type CapEvent struct {
	At   time.Duration
	GPUs int
}

// Trace is a time-ordered sequence of availability events over a horizon,
// optionally annotated with demand-autoscaling cap events.
type Trace struct {
	Horizon   time.Duration
	Events    []Event
	CapEvents []CapEvent
}

// sortEvents orders events (and cap events) by time, keeping insertion
// order for ties — the canonical ordering every replay view assumes.
func (t *Trace) sortEvents() {
	sort.SliceStable(t.Events, func(i, j int) bool { return t.Events[i].At < t.Events[j].At })
	sort.SliceStable(t.CapEvents, func(i, j int) bool { return t.CapEvents[i].At < t.CapEvents[j].At })
}

// Clone returns a deep copy of the trace.
func (t *Trace) Clone() *Trace {
	out := &Trace{Horizon: t.Horizon}
	if t.Events != nil {
		out.Events = append([]Event(nil), t.Events...)
	}
	if t.CapEvents != nil {
		out.CapEvents = append([]CapEvent(nil), t.CapEvents...)
	}
	return out
}

// CapAt returns the per-job GPU cap in force at time at — the latest cap
// event at or before it — and whether any cap event applies by then.
func (t *Trace) CapAt(at time.Duration) (int, bool) {
	cap, ok := 0, false
	for _, c := range t.CapEvents {
		if c.At > at {
			break
		}
		cap, ok = c.GPUs, true
	}
	return cap, ok
}

// CountAt returns the cumulative availability of (zone, gpu) at time at.
// Replay semantics match PoolAt: a reclamation can never take availability
// below zero, so an over-reclaiming event clamps at zero step by step rather
// than accruing a negative balance a later grant would have to pay off.
func (t *Trace) CountAt(at time.Duration, z core.Zone, g core.GPUType) int {
	n := 0
	for _, e := range t.Events {
		if e.At > at {
			break
		}
		if e.Zone == z && e.GPU == g {
			n += e.Delta
			if n < 0 {
				n = 0
			}
		}
	}
	return n
}

// PoolAt materialises the availability snapshot at time at.
func (t *Trace) PoolAt(at time.Duration) *cluster.Pool {
	p := cluster.NewPool()
	for _, e := range t.Events {
		if e.At > at {
			break
		}
		p.Add(e.Zone, e.GPU, e.Delta)
	}
	return p
}

// DistinctPools materialises the sequence of distinct non-empty
// availability snapshots the trace's events produce — the replan sequence
// an elastic controller issues while replaying it. Events sharing a
// timestamp are coalesced into one snapshot, and a total blackout resets
// the dedup state (capacity returning to the pre-blackout level is a fresh
// deployment), both matching the controller's per-event PoolAt view.
func (t *Trace) DistinctPools() []*cluster.Pool {
	var out []*cluster.Pool
	cur := cluster.NewPool()
	last := ""
	for i := 0; i < len(t.Events); {
		at := t.Events[i].At
		for ; i < len(t.Events) && t.Events[i].At == at; i++ {
			e := t.Events[i]
			cur.Add(e.Zone, e.GPU, e.Delta)
		}
		if cur.TotalGPUs() == 0 {
			last = ""
			continue
		}
		if s := cur.String(); s != last {
			last = s
			out = append(out, cur.Clone())
		}
	}
	return out
}

// Sample returns (time, count) pairs for one (zone, gpu) series at a fixed
// step, suitable for plotting Figure 2.
func (t *Trace) Sample(z core.Zone, g core.GPUType, step time.Duration) []Point {
	var pts []Point
	for at := time.Duration(0); at <= t.Horizon; at += step {
		pts = append(pts, Point{At: at, Count: t.CountAt(at, z, g)})
	}
	return pts
}

// Point is one sample of an availability series.
type Point struct {
	At    time.Duration
	Count int
}

// PeakGPUs returns the maximum total GPU availability the trace ever
// reaches, scanning event boundaries with the same stepwise clamping as
// CountAt. Overlays and replay harnesses use it to derive trace-intrinsic
// scales (e.g. an autoscaling cap as a fraction of peak capacity).
func (t *Trace) PeakGPUs() int {
	type cell struct {
		z core.Zone
		g core.GPUType
	}
	level := map[cell]int{}
	total, peak := 0, 0
	for i := 0; i < len(t.Events); {
		at := t.Events[i].At
		for ; i < len(t.Events) && t.Events[i].At == at; i++ {
			e := t.Events[i]
			c := cell{e.Zone, e.GPU}
			n := level[c] + e.Delta
			if n < 0 {
				n = 0
			}
			total += n - level[c]
			level[c] = n
		}
		// Sample at timestamp boundaries only, so a transient within one
		// instant (a +N immediately cancelled by a -N at the same At) does
		// not register as capacity the replay views never see.
		if total > peak {
			peak = total
		}
	}
	return peak
}

// GPUTypes returns the distinct GPU types the trace's events mention, in
// sorted order — the profiling set a replay of an external trace needs.
func (t *Trace) GPUTypes() []core.GPUType {
	seen := map[core.GPUType]bool{}
	var out []core.GPUType
	for _, e := range t.Events {
		if !seen[e.GPU] {
			seen[e.GPU] = true
			out = append(out, e.GPU)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// GCPA100Trace generates a Figure-2-shaped trace: two zones, 8 A100s
// requested in each over an 8-hour window. Zone A acquires GPUs in bursts
// with occasional reclamations and reaches the full 8 only near hour 7;
// zone B stalls below the request for the whole window.
func GCPA100Trace(seed int64) (*Trace, core.Zone, core.Zone) {
	return gcpA100Trace(seed, 8*time.Hour, 8)
}

// gcpA100Trace is the parameterized Figure-2 generator: `req` GPUs chased
// over `horizon`, zone A reaching the request at 7/8 of the horizon and
// zone B capped at 5/8 of it — the paper's shape at any scale. The
// defaults (8h, 8) reproduce GCPA100Trace exactly.
func gcpA100Trace(seed int64, horizon time.Duration, req int) (*Trace, core.Zone, core.Zone) {
	zoneA := cluster.GCPZone("us-central1", 'a')
	zoneB := cluster.GCPZone("us-central1", 'b')
	rng := rand.New(rand.NewSource(seed))
	t := &Trace{Horizon: horizon}

	gen := func(z core.Zone, acquireRatePerHour, reclaimProb float64, cap int, fullAt time.Duration) {
		have := 0
		for at := time.Duration(0); at < t.Horizon; at += time.Duration(rng.ExpFloat64() * float64(time.Hour) / acquireRatePerHour) {
			if at <= 0 {
				at = time.Minute
			}
			if have > 0 && rng.Float64() < reclaimProb {
				d := 1 + rng.Intn(2)
				if d > have {
					d = have
				}
				t.Events = append(t.Events, Event{At: at, Zone: z, GPU: core.A100, Delta: -d})
				have -= d
				continue
			}
			if have >= cap {
				continue
			}
			// Before fullAt, cap acquisitions below the request to model
			// the long wait for the final GPUs.
			limit := cap
			if fullAt > 0 && at < fullAt {
				limit = cap - 2
				if limit < 1 {
					limit = 1
				}
			}
			if have >= limit {
				continue
			}
			d := 1 + rng.Intn(2)
			if have+d > limit {
				d = limit - have
			}
			if d <= 0 {
				continue
			}
			t.Events = append(t.Events, Event{At: at, Zone: z, GPU: core.A100, Delta: d})
			have += d
		}
		if fullAt > 0 {
			// Force the final jump to the full request at fullAt.
			if have < cap {
				t.Events = append(t.Events, Event{At: fullAt, Zone: z, GPU: core.A100, Delta: cap - have})
			}
		}
	}
	capB := req * 5 / 8
	if capB < 1 {
		capB = 1
	}
	gen(zoneA, 2.0, 0.25, req, horizon*7/8)
	gen(zoneB, 1.2, 0.35, capB, 0) // never reaches the request
	t.sortEvents()
	return t, zoneA, zoneB
}

// Synthetic builds a trace from explicit events, for tests and examples.
func Synthetic(horizon time.Duration, events ...Event) *Trace {
	t := &Trace{Horizon: horizon, Events: append([]Event(nil), events...)}
	t.sortEvents()
	return t
}
