package trace

import (
	"testing"
	"time"

	"repro/internal/core"
)

func TestScenarioRegistry(t *testing.T) {
	scs := Scenarios()
	if len(scs) < 6 {
		t.Fatalf("registry has %d scenarios, want >= 6", len(scs))
	}
	seen := map[string]bool{}
	for _, s := range scs {
		if s.Name == "" || s.Description == "" || len(s.GPUs) == 0 {
			t.Errorf("scenario %+v missing metadata", s)
		}
		if seen[s.Name] {
			t.Errorf("duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
		got, ok := ScenarioByName(s.Name)
		if !ok || got.Name != s.Name {
			t.Errorf("ScenarioByName(%q) failed", s.Name)
		}
	}
	for _, want := range []string{
		"gcp-a100", "preemption-storm", "diurnal-wave", "zone-outage",
		"hetero-arrivals", "geo-shift",
	} {
		if !seen[want] {
			t.Errorf("scenario %q missing from registry", want)
		}
	}
	if _, ok := ScenarioByName("no-such-scenario"); ok {
		t.Error("unknown name should not resolve")
	}
}

// TestScenarioDeterminism: the same (seed, opts) must reproduce the
// identical event sequence — the contract the golden elastic tests build on.
func TestScenarioDeterminism(t *testing.T) {
	for _, s := range Scenarios() {
		t.Run(s.Name, func(t *testing.T) {
			a, b := s.Trace(7), s.Trace(7)
			if len(a.Events) != len(b.Events) {
				t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
			}
			for i := range a.Events {
				if a.Events[i] != b.Events[i] {
					t.Fatalf("event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
				}
			}
			c := s.Trace(8)
			same := len(a.Events) == len(c.Events)
			if same {
				for i := range a.Events {
					if a.Events[i] != c.Events[i] {
						same = false
						break
					}
				}
			}
			if same && s.Name != "diurnal-wave" {
				// The wave's phase jitter can collide across adjacent seeds;
				// every other family must diverge.
				t.Errorf("seeds 7 and 8 produced identical traces")
			}
		})
	}
}

// TestScenarioInvariants: every scenario yields sorted events, non-negative
// availability everywhere, a non-empty pool at the horizon, and stays within
// its scale envelope.
func TestScenarioInvariants(t *testing.T) {
	for _, s := range Scenarios() {
		t.Run(s.Name, func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				tr := s.Trace(seed)
				if tr.Horizon <= 0 || len(tr.Events) == 0 {
					t.Fatalf("seed %d: empty trace", seed)
				}
				for i := 1; i < len(tr.Events); i++ {
					if tr.Events[i].At < tr.Events[i-1].At {
						t.Fatalf("seed %d: events out of order at %d", seed, i)
					}
				}
				types := map[core.GPUType]bool{}
				for _, g := range s.GPUs {
					types[g] = true
				}
				for _, e := range tr.Events {
					if e.At > tr.Horizon {
						t.Errorf("seed %d: event at %v past horizon %v", seed, e.At, tr.Horizon)
					}
					if !types[e.GPU] {
						t.Errorf("seed %d: event uses %s, not in scenario GPUs", seed, e.GPU)
					}
				}
				// Availability never goes negative along the replay, and the
				// two replay views agree.
				for _, e := range tr.Events {
					p := tr.PoolAt(e.At)
					if n := tr.CountAt(e.At, e.Zone, e.GPU); n < 0 || n != p.Available(e.Zone, e.GPU) {
						t.Fatalf("seed %d: CountAt=%d vs PoolAt=%d at %v",
							seed, n, p.Available(e.Zone, e.GPU), e.At)
					}
				}
				if tr.PoolAt(tr.Horizon).TotalGPUs() == 0 {
					t.Errorf("seed %d: scenario ends with an empty pool", seed)
				}
			}
		})
	}
}

// TestScenarioShapes pins the load-bearing feature of each family.
func TestScenarioShapes(t *testing.T) {
	usc := func(letter byte) core.Zone {
		return core.Zone{Region: "us-central1", Name: "us-central1-" + string(letter)}
	}

	t.Run("preemption-storm", func(t *testing.T) {
		tr := PreemptionStorm().Trace(1)
		drops := 0
		for _, e := range tr.Events {
			if e.Delta < 0 {
				drops++
			}
		}
		if drops < 3 {
			t.Errorf("storm has only %d preemptions", drops)
		}
		if got := tr.CountAt(tr.Horizon, usc('a'), core.A100); got != 16 {
			t.Errorf("storm should end recovered at base 16, got %d", got)
		}
	})

	t.Run("diurnal-wave", func(t *testing.T) {
		tr := DiurnalWave().Trace(1)
		min, max := 1<<30, 0
		for h := 0; h <= 24; h++ {
			n := tr.CountAt(time.Duration(h)*time.Hour, usc('a'), core.A100)
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		if max != 16 || min != 4 {
			t.Errorf("wave range [%d,%d], want [4,16]", min, max)
		}
	})

	t.Run("zone-outage", func(t *testing.T) {
		tr := ZoneOutage().Trace(1)
		sawZero := false
		for _, e := range tr.Events {
			if e.Zone == usc('b') && tr.CountAt(e.At, usc('b'), core.A100) == 0 && e.At > time.Hour {
				sawZero = true
			}
		}
		if !sawZero {
			t.Error("zone b never blacked out")
		}
		if got := tr.CountAt(tr.Horizon, usc('b'), core.A100); got != 8 {
			t.Errorf("zone b should recover to 8, got %d", got)
		}
	})

	t.Run("hetero-arrivals", func(t *testing.T) {
		tr := HeteroArrivals().Trace(1)
		if n := tr.CountAt(time.Hour, usc('b'), core.V100); n != 0 {
			t.Errorf("V100s should not have arrived at 1h, got %d", n)
		}
		if n := tr.CountAt(tr.Horizon, usc('b'), core.V100); n != 16 {
			t.Errorf("V100s should end at 16, got %d", n)
		}
		if n := tr.CountAt(time.Hour, usc('a'), core.A100); n != 8 {
			t.Errorf("A100s should be fully granted by 1h, got %d", n)
		}
	})

	t.Run("geo-shift", func(t *testing.T) {
		tr := GeoShift().Trace(1)
		eu := core.Zone{Region: "europe-west4", Name: "europe-west4-a"}
		if us, e := tr.CountAt(0, usc('a'), core.A100), tr.CountAt(0, eu, core.A100); us != 12 || e != 4 {
			t.Errorf("start levels us=%d eu=%d, want 12/4", us, e)
		}
		if us, e := tr.CountAt(tr.Horizon, usc('a'), core.A100), tr.CountAt(tr.Horizon, eu, core.A100); us != 4 || e != 12 {
			t.Errorf("end levels us=%d eu=%d, want 4/12", us, e)
		}
	})
}

// TestScenarioOptsScaling: TraceWith scales every family without breaking
// its invariants — in particular, a shortened Horizon compresses the shape
// rather than pushing events past the end of the trace — and zero fields
// keep the defaults.
func TestScenarioOptsScaling(t *testing.T) {
	s := PreemptionStorm()
	big := s.TraceWith(3, ScenarioOpts{Base: 32})
	if got := big.PoolAt(big.Horizon).TotalGPUs(); got != 32 {
		t.Errorf("scaled storm ends at %d GPUs, want 32", got)
	}
	if big.Horizon != s.Defaults.Horizon {
		t.Errorf("zero Horizon should keep default, got %v", big.Horizon)
	}
	for _, sc := range Scenarios() {
		for _, o := range []ScenarioOpts{
			{Horizon: 2 * time.Hour},
			{Horizon: 90 * time.Minute, Base: 4},
		} {
			tr := sc.TraceWith(3, o)
			if tr.Horizon != o.Horizon {
				t.Errorf("%s: horizon override ignored: %v", sc.Name, tr.Horizon)
			}
			if len(tr.Events) == 0 {
				t.Errorf("%s: no events under %v horizon", sc.Name, o.Horizon)
			}
			for _, e := range tr.Events {
				if e.At > tr.Horizon {
					t.Fatalf("%s: event at %v past shortened horizon %v", sc.Name, e.At, tr.Horizon)
				}
			}
		}
	}
}

// TestDistinctPools: the shared replan-sequence helper matches the
// controller's per-event PoolAt view — coalescing same-instant events,
// skipping empty pools, deduplicating consecutive repeats, and treating
// capacity returning after a total blackout as a fresh deployment even
// when it matches the pre-blackout snapshot.
func TestDistinctPools(t *testing.T) {
	z := core.Zone{Region: "r", Name: "r-a"}
	z2 := core.Zone{Region: "r", Name: "r-b"}
	tr := Synthetic(time.Hour,
		Event{At: 10 * time.Minute, Zone: z, GPU: core.A100, Delta: 4},
		// Two events at one instant must coalesce into one snapshot.
		Event{At: 20 * time.Minute, Zone: z, GPU: core.A100, Delta: -4},
		Event{At: 20 * time.Minute, Zone: z2, GPU: core.A100, Delta: 8},
		// No-op pair: pool string unchanged, must be deduplicated.
		Event{At: 30 * time.Minute, Zone: z2, GPU: core.A100, Delta: 0},
		Event{At: 40 * time.Minute, Zone: z2, GPU: core.A100, Delta: -8}, // blackout: skipped
		// Recovery to the identical pre-blackout level must reappear.
		Event{At: 50 * time.Minute, Zone: z2, GPU: core.A100, Delta: 8},
	)
	pools := tr.DistinctPools()
	if len(pools) != 3 {
		t.Fatalf("DistinctPools returned %d pools, want 3", len(pools))
	}
	if pools[0].Available(z, core.A100) != 4 ||
		pools[1].Available(z2, core.A100) != 8 || pools[1].Available(z, core.A100) != 0 ||
		pools[2].String() != pools[1].String() {
		t.Errorf("unexpected pool sequence: %v %v %v", pools[0], pools[1], pools[2])
	}
	// Each returned pool matches PoolAt at its event time.
	for _, at := range []time.Duration{10 * time.Minute, 20 * time.Minute, 50 * time.Minute} {
		found := false
		for _, p := range pools {
			if p.String() == tr.PoolAt(at).String() {
				found = true
			}
		}
		if !found {
			t.Errorf("PoolAt(%v) missing from DistinctPools", at)
		}
	}
}
