package core

// Estimator is the shared seam between the planner and the evaluation
// backends. The analytical simulator (§4.3), the ground-truth engine (the
// testbed substitute), and the baselines' published estimators all satisfy
// it, so search and serving code can be written once against the interface
// and pointed at any backend.
type Estimator interface {
	// Estimate evaluates a plan end to end: iteration time, cost split,
	// and the peak memory of the most loaded worker.
	Estimate(Plan) (Estimate, error)
	// Throughput returns iterations per second for a valid plan, or an
	// error when the plan is invalid or does not fit memory.
	Throughput(Plan) (float64, error)
	// PeakMemory returns the predicted peak bytes of the most loaded
	// worker, or an error when the backend has no memory model or the
	// plan is invalid.
	PeakMemory(Plan) (int64, error)
}
