// Package core defines the shared domain types of the Sailor reproduction:
// GPU and zone identifiers, parallelization plans with heterogeneous
// per-stage tensor parallelism, optimization objectives, and constraints.
//
// Every other package (profiler, simulator, planner, baselines, runtime)
// speaks in these types, mirroring the paper's decomposition in §4.
package core

import (
	"fmt"
	"sort"
	"strings"
)

// GPUType identifies a GPU generation/SKU, e.g. "A100-40" or "V100-16".
// GPUs are treated as black-box compute units (paper §4.3), so a GPUType is
// only a key into the hardware catalogue and profiling tables.
type GPUType string

// Common GPU types used throughout the evaluation.
const (
	A100     GPUType = "A100-40"
	V100     GPUType = "V100-16"
	GH200    GPUType = "GH200-96"
	RTX3090  GPUType = "RTX-3090"
	RTX2080  GPUType = "RTX-2080"
	TitanRTX GPUType = "Titan-RTX"
	A10G     GPUType = "A10G"
	T4       GPUType = "T4"
	H100     GPUType = "H100-80"
)

// Zone identifies a cloud availability zone within a region, e.g.
// region "us-central1", zone "us-central1-a". On-premise clusters use a
// single synthetic zone.
type Zone struct {
	Region string
	Name   string
}

// String returns the fully qualified zone name.
func (z Zone) String() string { return z.Name }

// SameRegion reports whether both zones belong to the same cloud region.
// Heuristic H6 treats all zones of one region as a single zone.
func (z Zone) SameRegion(o Zone) bool { return z.Region == o.Region }

// StageReplica is one data-parallel replica of a pipeline stage: a set of
// TP GPUs of a single type within a single zone (heuristics H1 and H5).
type StageReplica struct {
	GPU  GPUType
	TP   int
	Zone Zone
}

// GPUCount returns the number of GPUs the replica occupies.
func (r StageReplica) GPUCount() int { return r.TP }

// StagePlan describes one pipeline stage: the contiguous range of
// transformer layers it owns and its data-parallel replicas. Replicas may
// use different GPU types and tensor-parallel degrees (the heterogeneous
// plans of §4.4); len(Replicas) equals the plan's data-parallel degree.
type StagePlan struct {
	// FirstLayer and NumLayers delimit the contiguous layer range
	// [FirstLayer, FirstLayer+NumLayers) assigned to this stage.
	FirstLayer int
	NumLayers  int
	Replicas   []StageReplica
}

// GPUCount returns the total GPUs used by all replicas of the stage.
func (s StagePlan) GPUCount() int {
	n := 0
	for _, r := range s.Replicas {
		n += r.GPUCount()
	}
	return n
}

// Plan is a complete job parallelization plan: the pipeline decomposition,
// the per-stage replicas, and the microbatch size. The global batch size is
// part of the job spec, not the plan: Sailor never changes it (§4.2).
type Plan struct {
	Stages []StagePlan
	// MicroBatchSize is the per-pipeline microbatch size (sequences).
	MicroBatchSize int
	// Recompute enables full activation recomputation: workers retain only
	// stage-boundary activations and replay the forward pass during
	// backward, trading ~1/3 more compute for a much smaller footprint.
	// The paper lists rematerialization as future work (§6); this
	// reproduction implements it as an optional extension.
	Recompute bool
}

// PP returns the pipeline-parallel degree (number of stages).
func (p Plan) PP() int { return len(p.Stages) }

// DP returns the data-parallel degree. All stages share the same degree
// (paper §4.2.1, H3: "Sailor uses the same data parallelism for each stage").
func (p Plan) DP() int {
	if len(p.Stages) == 0 {
		return 0
	}
	return len(p.Stages[0].Replicas)
}

// GPUCount returns the total number of GPUs the plan occupies.
func (p Plan) GPUCount() int {
	n := 0
	for _, s := range p.Stages {
		n += s.GPUCount()
	}
	return n
}

// Zones returns the distinct zones the plan touches, sorted by name.
func (p Plan) Zones() []Zone {
	seen := map[Zone]bool{}
	for _, s := range p.Stages {
		for _, r := range s.Replicas {
			seen[r.Zone] = true
		}
	}
	zs := make([]Zone, 0, len(seen))
	for z := range seen {
		zs = append(zs, z)
	}
	sort.Slice(zs, func(i, j int) bool { return zs[i].Name < zs[j].Name })
	return zs
}

// GPUTypes returns the distinct GPU types the plan uses, sorted.
func (p Plan) GPUTypes() []GPUType {
	seen := map[GPUType]bool{}
	for _, s := range p.Stages {
		for _, r := range s.Replicas {
			seen[r.GPU] = true
		}
	}
	ts := make([]GPUType, 0, len(seen))
	for t := range seen {
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	return ts
}

// Validate performs structural checks: at least one stage, uniform DP across
// stages, positive TP, contiguous non-overlapping layer coverage of
// totalLayers, and positive microbatch size.
func (p Plan) Validate(totalLayers int) error {
	if len(p.Stages) == 0 {
		return fmt.Errorf("plan: no stages")
	}
	if p.MicroBatchSize <= 0 {
		return fmt.Errorf("plan: microbatch size %d must be positive", p.MicroBatchSize)
	}
	dp := len(p.Stages[0].Replicas)
	if dp == 0 {
		return fmt.Errorf("plan: stage 0 has no replicas")
	}
	next := 0
	for i, s := range p.Stages {
		if len(s.Replicas) != dp {
			return fmt.Errorf("plan: stage %d has DP %d, want %d (uniform per H3)", i, len(s.Replicas), dp)
		}
		if s.NumLayers <= 0 {
			return fmt.Errorf("plan: stage %d has %d layers", i, s.NumLayers)
		}
		if s.FirstLayer != next {
			return fmt.Errorf("plan: stage %d starts at layer %d, want %d", i, s.FirstLayer, next)
		}
		next = s.FirstLayer + s.NumLayers
		for j, r := range s.Replicas {
			if r.TP <= 0 {
				return fmt.Errorf("plan: stage %d replica %d has TP %d", i, j, r.TP)
			}
			if r.GPU == "" {
				return fmt.Errorf("plan: stage %d replica %d has empty GPU type", i, j)
			}
		}
	}
	if next != totalLayers {
		return fmt.Errorf("plan: stages cover %d layers, model has %d", next, totalLayers)
	}
	return nil
}

// String renders a compact human-readable description, e.g.
// "PP=2 DP=4 mbs=2 | s0 L0-11 [4xA100-40/tp4@us-central1-a] ...".
func (p Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "PP=%d DP=%d mbs=%d", p.PP(), p.DP(), p.MicroBatchSize)
	for i, s := range p.Stages {
		fmt.Fprintf(&b, " | s%d L%d-%d ", i, s.FirstLayer, s.FirstLayer+s.NumLayers-1)
		// Group identical replicas for brevity.
		type key struct {
			g  GPUType
			tp int
			z  Zone
		}
		counts := map[key]int{}
		order := []key{}
		for _, r := range s.Replicas {
			k := key{r.GPU, r.TP, r.Zone}
			if counts[k] == 0 {
				order = append(order, k)
			}
			counts[k]++
		}
		parts := make([]string, 0, len(order))
		for _, k := range order {
			parts = append(parts, fmt.Sprintf("%dx%s/tp%d@%s", counts[k], k.g, k.tp, k.z.Name))
		}
		b.WriteString("[" + strings.Join(parts, " ") + "]")
	}
	return b.String()
}

// Objective selects what the planner optimizes (§4.2).
type Objective int

const (
	// MaxThroughput maximizes iterations per second.
	MaxThroughput Objective = iota
	// MinCost minimizes USD per iteration.
	MinCost
)

// String implements fmt.Stringer.
func (o Objective) String() string {
	switch o {
	case MaxThroughput:
		return "max-throughput"
	case MinCost:
		return "min-cost"
	}
	return fmt.Sprintf("Objective(%d)", int(o))
}

// ParseObjective is the inverse of Objective.String: it resolves the names
// CLIs and wire messages carry ("max-throughput", "min-cost") back to the
// typed objective.
func ParseObjective(s string) (Objective, error) {
	switch s {
	case MaxThroughput.String():
		return MaxThroughput, nil
	case MinCost.String():
		return MinCost, nil
	}
	return MaxThroughput, fmt.Errorf("core: unknown objective %q (want %q or %q)",
		s, MaxThroughput, MinCost)
}

// Constraints bound the feasible plans. Zero values mean "unconstrained".
type Constraints struct {
	// MaxCostPerIter is a budget limit in USD per iteration (§4.2.3).
	MaxCostPerIter float64
	// MinThroughput is a floor in iterations per second (§5.2.4 scenario 1).
	MinThroughput float64
	// MaxIterTime is a ceiling in seconds per iteration.
	MaxIterTime float64
}

// Satisfied reports whether a (time, cost) point meets all constraints.
// iterTime is seconds per iteration, cost is USD per iteration.
func (c Constraints) Satisfied(iterTime, cost float64) bool {
	if c.MaxCostPerIter > 0 && cost > c.MaxCostPerIter {
		return false
	}
	if c.MinThroughput > 0 && iterTime > 0 && 1.0/iterTime < c.MinThroughput {
		return false
	}
	if c.MaxIterTime > 0 && iterTime > c.MaxIterTime {
		return false
	}
	return true
}

// Estimate is the simulator's evaluation of a plan (§4.3): iteration time,
// per-iteration monetary cost split into compute and communication, and the
// peak memory footprint of the most loaded worker.
type Estimate struct {
	IterTime       float64 // seconds per iteration
	ComputeCost    float64 // USD per iteration, resource-time
	EgressCost     float64 // USD per iteration, cross-zone/region transfer
	PeakMemory     int64   // bytes, max over workers
	PeakMemoryGPU  GPUType // GPU type of the most loaded worker
	FitsMemory     bool    // no worker exceeds its GPU capacity
	StageTimes     []float64
	StragglerStage int
}

// Throughput returns iterations per second (0 when IterTime is 0).
func (e Estimate) Throughput() float64 {
	if e.IterTime <= 0 {
		return 0
	}
	return 1.0 / e.IterTime
}

// Cost returns the total USD per iteration.
func (e Estimate) Cost() float64 { return e.ComputeCost + e.EgressCost }
