package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func zone(r, n string) Zone { return Zone{Region: r, Name: n} }

func twoStagePlan() Plan {
	za := zone("us-central1", "us-central1-a")
	return Plan{
		MicroBatchSize: 2,
		Stages: []StagePlan{
			{FirstLayer: 0, NumLayers: 12, Replicas: []StageReplica{
				{GPU: A100, TP: 4, Zone: za}, {GPU: A100, TP: 4, Zone: za},
			}},
			{FirstLayer: 12, NumLayers: 12, Replicas: []StageReplica{
				{GPU: V100, TP: 8, Zone: za}, {GPU: V100, TP: 8, Zone: za},
			}},
		},
	}
}

func TestPlanDegrees(t *testing.T) {
	p := twoStagePlan()
	if got := p.PP(); got != 2 {
		t.Errorf("PP = %d, want 2", got)
	}
	if got := p.DP(); got != 2 {
		t.Errorf("DP = %d, want 2", got)
	}
	if got := p.GPUCount(); got != 2*4+2*8 {
		t.Errorf("GPUCount = %d, want 24", got)
	}
}

func TestPlanValidateOK(t *testing.T) {
	p := twoStagePlan()
	if err := p.Validate(24); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestPlanValidateErrors(t *testing.T) {
	base := twoStagePlan()

	cases := []struct {
		name    string
		mutate  func(*Plan)
		layers  int
		wantSub string
	}{
		{"no stages", func(p *Plan) { p.Stages = nil }, 24, "no stages"},
		{"bad mbs", func(p *Plan) { p.MicroBatchSize = 0 }, 24, "microbatch"},
		{"uneven dp", func(p *Plan) { p.Stages[1].Replicas = p.Stages[1].Replicas[:1] }, 24, "DP"},
		{"gap", func(p *Plan) { p.Stages[1].FirstLayer = 13 }, 24, "starts at layer"},
		{"wrong coverage", func(p *Plan) {}, 25, "cover"},
		{"zero tp", func(p *Plan) { p.Stages[0].Replicas[0].TP = 0 }, 24, "TP"},
		{"empty gpu", func(p *Plan) { p.Stages[0].Replicas[0].GPU = "" }, 24, "GPU type"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := base
			// Deep-copy stages so mutations do not leak between cases.
			p.Stages = make([]StagePlan, len(base.Stages))
			for i, s := range base.Stages {
				s.Replicas = append([]StageReplica(nil), s.Replicas...)
				p.Stages[i] = s
			}
			tc.mutate(&p)
			err := p.Validate(tc.layers)
			if err == nil {
				t.Fatalf("Validate: want error containing %q, got nil", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("Validate: error %q does not contain %q", err, tc.wantSub)
			}
		})
	}
}

func TestPlanZonesAndTypes(t *testing.T) {
	p := twoStagePlan()
	p.Stages[1].Replicas[1].Zone = zone("us-west1", "us-west1-b")
	zs := p.Zones()
	if len(zs) != 2 {
		t.Fatalf("Zones = %v, want 2 zones", zs)
	}
	if zs[0].Name != "us-central1-a" || zs[1].Name != "us-west1-b" {
		t.Errorf("Zones not sorted: %v", zs)
	}
	ts := p.GPUTypes()
	if len(ts) != 2 || ts[0] != A100 || ts[1] != V100 {
		t.Errorf("GPUTypes = %v", ts)
	}
}

func TestZoneSameRegion(t *testing.T) {
	a := zone("us-central1", "us-central1-a")
	b := zone("us-central1", "us-central1-b")
	c := zone("us-west1", "us-west1-a")
	if !a.SameRegion(b) {
		t.Error("a and b should share a region")
	}
	if a.SameRegion(c) {
		t.Error("a and c should not share a region")
	}
}

func TestConstraintsSatisfied(t *testing.T) {
	c := Constraints{MaxCostPerIter: 1.0, MinThroughput: 0.2}
	if !c.Satisfied(4.0, 0.9) { // 0.25 iters/sec, $0.9
		t.Error("want satisfied at 0.25 it/s, $0.9")
	}
	if c.Satisfied(6.0, 0.9) { // 0.167 it/s below floor
		t.Error("throughput floor should reject 6 s/iter")
	}
	if c.Satisfied(4.0, 1.1) {
		t.Error("budget should reject $1.1")
	}
	var unconstrained Constraints
	if !unconstrained.Satisfied(100, 100) {
		t.Error("zero constraints must accept everything")
	}
}

func TestEstimateAccessors(t *testing.T) {
	e := Estimate{IterTime: 2.0, ComputeCost: 0.3, EgressCost: 0.1}
	if got := e.Throughput(); got != 0.5 {
		t.Errorf("Throughput = %v, want 0.5", got)
	}
	if got := e.Cost(); got != 0.4 {
		t.Errorf("Cost = %v, want 0.4", got)
	}
	if (Estimate{}).Throughput() != 0 {
		t.Error("zero estimate should have zero throughput")
	}
}

func TestPlanStringGroupsReplicas(t *testing.T) {
	s := twoStagePlan().String()
	if !strings.Contains(s, "PP=2 DP=2 mbs=2") {
		t.Errorf("String missing degrees: %s", s)
	}
	if !strings.Contains(s, "2xA100-40/tp4") {
		t.Errorf("String should group identical replicas: %s", s)
	}
}

func TestObjectiveString(t *testing.T) {
	if MaxThroughput.String() != "max-throughput" || MinCost.String() != "min-cost" {
		t.Error("objective names wrong")
	}
	if Objective(99).String() == "" {
		t.Error("unknown objective should still render")
	}
}

// Property: Satisfied is monotone — relaxing cost or time never flips a
// satisfied configuration to unsatisfied.
func TestConstraintsMonotoneProperty(t *testing.T) {
	f := func(maxCost, minTP float64, iterTime, cost float64, slack float64) bool {
		c := Constraints{MaxCostPerIter: abs(maxCost), MinThroughput: abs(minTP)}
		it, co := abs(iterTime)+0.001, abs(cost)
		s := abs(slack)
		if !c.Satisfied(it, co) {
			return true // vacuous
		}
		// Strictly better point (faster, cheaper) must also satisfy.
		return c.Satisfied(it/(1+s), co/(1+s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestParseObjective(t *testing.T) {
	for _, o := range []Objective{MaxThroughput, MinCost} {
		got, err := ParseObjective(o.String())
		if err != nil || got != o {
			t.Errorf("ParseObjective(%q) = %v, %v; want %v", o, got, err, o)
		}
	}
	if _, err := ParseObjective("fastest"); err == nil || !strings.Contains(err.Error(), "unknown objective") {
		t.Errorf("ParseObjective of a bad name = %v, want unknown-objective error", err)
	}
}
