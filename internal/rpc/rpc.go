// Package rpc is a minimal request/response message layer over TCP, the
// stand-in for the paper's gRPC control plane (§5.5 "topology broadcast
// (using grpc)"). Frames are length-prefixed JSON; each request carries an
// id echoed by the response, so one connection multiplexes concurrent
// calls. Stdlib only.
//
// Shutdown is graceful: Server.Close stops accepting, lets every in-flight
// handler finish and flush its reply, answers requests that arrive during
// the drain with ErrServerClosed, and only then tears connections down.
// Client calls fail with typed errors — ErrClientClosed after a local
// Close, ErrServerClosed when the server refused the request during
// shutdown, ErrConnectionLost when the transport died mid-call — so
// callers can distinguish "retry elsewhere" from "stop".
package rpc

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Typed call-failure errors; match with errors.Is.
var (
	// ErrClientClosed is returned by Call after the client's own Close, and
	// by calls pending when Close tears the connection down.
	ErrClientClosed = errors.New("rpc: client closed")
	// ErrServerClosed is returned for requests a shutting-down server
	// refused to dispatch.
	ErrServerClosed = errors.New("rpc: server closed")
	// ErrConnectionLost is returned when the transport died under a call
	// that had no reply yet, and by every call after that.
	ErrConnectionLost = errors.New("rpc: connection lost")
)

// codeServerClosed marks a shutdown refusal on the wire so the client can
// surface the typed ErrServerClosed rather than an opaque string.
const codeServerClosed = "server-closed"

// MaxFrame bounds a frame to keep a corrupt length prefix from allocating
// unbounded memory.
const MaxFrame = 64 << 20

// drainTimeout bounds how long Close waits for in-flight replies to flush:
// a client that stopped reading would otherwise block a reply write — and
// with it the drain — forever. A var so tests can shorten it.
var drainTimeout = 10 * time.Second

// frame writes one length-prefixed JSON message.
func writeFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if len(body) > MaxFrame {
		return fmt.Errorf("rpc: frame of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// readFrame reads one length-prefixed JSON message into v.
func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return fmt.Errorf("rpc: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

// envelope wraps every wire message.
type envelope struct {
	ID     uint64          `json:"id"`
	Method string          `json:"method,omitempty"`
	Body   json.RawMessage `json:"body,omitempty"`
	Err    string          `json:"err,omitempty"`
	// Code tags machine-readable error classes (see codeServerClosed).
	Code string `json:"code,omitempty"`
}

// Handler serves one method: it receives the raw request body and returns
// the response value or an error.
type Handler func(body json.RawMessage) (any, error)

// Server dispatches incoming calls on a listener.
type Server struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	conns    map[net.Conn]struct{}
	lis      net.Listener
	connWG   sync.WaitGroup
	closed   chan struct{}

	// reqMu guards closing and admission into reqWG: once closing is set no
	// new handler may start, so Close's reqWG.Wait() drains a fixed set.
	reqMu   sync.Mutex
	closing bool
	reqWG   sync.WaitGroup
}

// NewServer returns a server that owns the listener.
func NewServer(lis net.Listener) *Server {
	return &Server{
		handlers: map[string]Handler{},
		conns:    map[net.Conn]struct{}{},
		lis:      lis,
		closed:   make(chan struct{}),
	}
}

// Handle registers a method handler; it must be called before Serve.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// Serve accepts connections until Close; it returns after the listener
// closes.
func (s *Server) Serve() {
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// admit registers one in-flight request, unless the server is draining.
func (s *Server) admit() bool {
	s.reqMu.Lock()
	defer s.reqMu.Unlock()
	if s.closing {
		return false
	}
	s.reqWG.Add(1)
	return true
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	var wmu sync.Mutex
	w := bufio.NewWriter(conn)
	reply := func(env envelope) {
		wmu.Lock()
		defer wmu.Unlock()
		if err := writeFrame(w, env); err == nil {
			w.Flush()
		}
	}
	for {
		var req envelope
		if err := readFrame(r, &req); err != nil {
			return
		}
		s.mu.RLock()
		h := s.handlers[req.Method]
		s.mu.RUnlock()
		if !s.admit() {
			// Shutting down: refuse instead of racing the drain, so the
			// pending client call unblocks with a typed error.
			reply(envelope{ID: req.ID, Err: ErrServerClosed.Error(), Code: codeServerClosed})
			continue
		}
		go func(req envelope) {
			defer s.reqWG.Done()
			if h == nil {
				reply(envelope{ID: req.ID, Err: fmt.Sprintf("rpc: unknown method %q", req.Method)})
				return
			}
			out, err := h(req.Body)
			if err != nil {
				reply(envelope{ID: req.ID, Err: err.Error()})
				return
			}
			body, err := json.Marshal(out)
			if err != nil {
				reply(envelope{ID: req.ID, Err: err.Error()})
				return
			}
			reply(envelope{ID: req.ID, Body: body})
		}(req)
	}
}

// Close stops accepting, drains in-flight handlers (their replies are
// flushed to the still-open connections), then tears connections down and
// waits for the connection goroutines. Requests arriving during the drain
// fail fast with ErrServerClosed. Close is idempotent.
func (s *Server) Close() {
	s.reqMu.Lock()
	if s.closing {
		s.reqMu.Unlock()
		return
	}
	s.closing = true
	s.reqMu.Unlock()

	close(s.closed)
	s.lis.Close()
	// Bound the drain: every in-flight reply must flush within drainTimeout
	// or fail with a deadline error, so a stalled client (one that stopped
	// reading, with a full TCP buffer) cannot wedge Close. All admitted
	// handlers run on conns registered before closing was set, so this
	// snapshot covers every write the drain waits on.
	deadline := time.Now().Add(drainTimeout)
	s.mu.Lock()
	for conn := range s.conns {
		conn.SetWriteDeadline(deadline)
	}
	s.mu.Unlock()
	s.reqWG.Wait()
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.connWG.Wait()
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.lis.Addr() }

// Client multiplexes calls over one connection.
type Client struct {
	conn net.Conn
	wmu  sync.Mutex
	w    *bufio.Writer

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan envelope
	err     error
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		w:       bufio.NewWriter(conn),
		pending: map[uint64]chan envelope{},
	}
	go c.readLoop()
	return c, nil
}

// fail marks the client dead with a typed error (keeping the first cause)
// and unblocks every pending call by closing its channel.
func (c *Client) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = err
	}
	for id, ch := range c.pending {
		close(ch)
		delete(c.pending, id)
	}
}

func (c *Client) readLoop() {
	r := bufio.NewReader(c.conn)
	for {
		var env envelope
		if err := readFrame(r, &env); err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrConnectionLost, err))
			return
		}
		c.mu.Lock()
		ch := c.pending[env.ID]
		delete(c.pending, env.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- env
		}
	}
}

// Call invokes method with req, decoding the response into resp (which may
// be nil for fire-and-check calls). After the transport dies or Close is
// called, Call fails fast with the typed cause (ErrClientClosed,
// ErrConnectionLost).
func (c *Client) Call(method string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	ch := make(chan envelope, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err = writeFrame(c.w, envelope{ID: id, Method: method, Body: body})
	if err == nil {
		err = c.w.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		typed := c.err
		c.mu.Unlock()
		if typed != nil {
			// Close (or connection loss) raced the write; surface the typed
			// cause rather than the raw closed-socket error.
			return typed
		}
		return err
	}

	env, ok := <-ch
	if !ok {
		// The connection died (or Close ran) before a reply arrived.
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = ErrConnectionLost
		}
		return err
	}
	if env.Err != "" {
		if env.Code == codeServerClosed {
			return ErrServerClosed
		}
		return errors.New(env.Err)
	}
	if resp != nil {
		return json.Unmarshal(env.Body, resp)
	}
	return nil
}

// Close tears the connection down; pending and subsequent calls fail with
// ErrClientClosed.
func (c *Client) Close() error {
	c.fail(ErrClientClosed)
	return c.conn.Close()
}
