// Package rpc is a minimal request/response message layer over TCP, the
// stand-in for the paper's gRPC control plane (§5.5 "topology broadcast
// (using grpc)"). Frames are length-prefixed JSON; each request carries an
// id echoed by the response, so one connection multiplexes concurrent
// calls. Stdlib only.
//
// Shutdown is graceful: Server.Close stops accepting, lets every in-flight
// handler finish and flush its reply, answers requests that arrive during
// the drain with ErrServerClosed, and only then tears connections down.
// Client calls fail with typed errors — ErrClientClosed after a local
// Close, ErrServerClosed when the server refused the request during
// shutdown, ErrConnectionLost when the transport died mid-call,
// ErrOverloaded when the server shed the request — so callers can
// distinguish "retry" from "back off" from "stop".
//
// Deadlines propagate end to end: CallContext stamps the context's
// remaining budget on the request envelope, the server wraps the handler's
// context with it, and deadline failures come back wire-coded so the
// caller sees context.DeadlineExceeded rather than an opaque string.
package rpc

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"
)

// Typed call-failure errors; match with errors.Is.
var (
	// ErrClientClosed is returned by Call after the client's own Close, and
	// by calls pending when Close tears the connection down.
	ErrClientClosed = errors.New("rpc: client closed")
	// ErrServerClosed is returned for requests a shutting-down server
	// refused to dispatch.
	ErrServerClosed = errors.New("rpc: server closed")
	// ErrConnectionLost is returned when the transport died under a call
	// that had no reply yet, and by every call after that.
	ErrConnectionLost = errors.New("rpc: connection lost")
	// ErrOverloaded is returned when the server shed the request because
	// its wait queue was full. Handlers return errors wrapping it; the
	// wire code resurfaces it typed on the client, where it means "the
	// call never ran — back off and retry".
	ErrOverloaded = errors.New("rpc: server overloaded")
)

// Wire codes tag machine-readable error classes on reply envelopes, so the
// client surfaces typed errors rather than opaque strings.
const (
	// codeServerClosed marks a shutdown refusal.
	codeServerClosed = "server-closed"
	// codeOverloaded marks a request shed by an overloaded server.
	codeOverloaded = "overloaded"
	// codeDeadline marks a handler cut off by the request's own deadline.
	codeDeadline = "deadline"
)

// MaxFrame bounds a frame to keep a corrupt length prefix from allocating
// unbounded memory.
const MaxFrame = 64 << 20

// drainTimeout bounds how long Close waits for in-flight replies to flush:
// a client that stopped reading would otherwise block a reply write — and
// with it the drain — forever. A var so tests can shorten it.
var drainTimeout = 10 * time.Second

// encodeFrame renders one length-prefixed JSON message.
func encodeFrame(v any) ([]byte, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	if len(body) > MaxFrame {
		return nil, fmt.Errorf("rpc: frame of %d bytes exceeds limit", len(body))
	}
	frame := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(frame[:4], uint32(len(body)))
	copy(frame[4:], body)
	return frame, nil
}

// frame writes one length-prefixed JSON message.
func writeFrame(w io.Writer, v any) error {
	frame, err := encodeFrame(v)
	if err != nil {
		return err
	}
	_, err = w.Write(frame)
	return err
}

// readFrame reads one length-prefixed JSON message into v.
func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return fmt.Errorf("rpc: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

// envelope wraps every wire message.
type envelope struct {
	ID     uint64          `json:"id"`
	Method string          `json:"method,omitempty"`
	Body   json.RawMessage `json:"body,omitempty"`
	Err    string          `json:"err,omitempty"`
	// Code tags machine-readable error classes (see codeServerClosed).
	Code string `json:"code,omitempty"`
	// TimeoutNS is the caller's remaining deadline budget, carried as a
	// relative duration (absolute times don't survive clock skew); the
	// server bounds the handler's context with it.
	TimeoutNS int64 `json:"timeout_ns,omitempty"`
}

// Handler serves one method: it receives the request context (carrying the
// caller's deadline, if any) and raw body, and returns the response value
// or an error.
type Handler func(ctx context.Context, body json.RawMessage) (any, error)

// Server dispatches incoming calls on a listener.
type Server struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	conns    map[net.Conn]struct{}
	lis      net.Listener
	connWG   sync.WaitGroup
	closed   chan struct{}

	// reqMu guards closing and admission into reqWG: once closing is set no
	// new handler may start, so Close's reqWG.Wait() drains a fixed set.
	reqMu   sync.Mutex
	closing bool
	reqWG   sync.WaitGroup
}

// NewServer returns a server that owns the listener.
func NewServer(lis net.Listener) *Server {
	return &Server{
		handlers: map[string]Handler{},
		conns:    map[net.Conn]struct{}{},
		lis:      lis,
		closed:   make(chan struct{}),
	}
}

// Handle registers a method handler; it must be called before Serve.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// Serve accepts connections until Close; it returns after the listener
// closes.
func (s *Server) Serve() {
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// admit registers one in-flight request, unless the server is draining.
func (s *Server) admit() bool {
	s.reqMu.Lock()
	defer s.reqMu.Unlock()
	if s.closing {
		return false
	}
	s.reqWG.Add(1)
	return true
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	var wmu sync.Mutex
	w := bufio.NewWriter(conn)
	reply := func(env envelope) {
		wmu.Lock()
		defer wmu.Unlock()
		if err := writeFrame(w, env); err == nil {
			w.Flush()
		}
	}
	for {
		var req envelope
		if err := readFrame(r, &req); err != nil {
			return
		}
		s.mu.RLock()
		h := s.handlers[req.Method]
		s.mu.RUnlock()
		if !s.admit() {
			// Shutting down: refuse instead of racing the drain, so the
			// pending client call unblocks with a typed error.
			reply(envelope{ID: req.ID, Err: ErrServerClosed.Error(), Code: codeServerClosed})
			continue
		}
		go func(req envelope) {
			defer s.reqWG.Done()
			if h == nil {
				reply(envelope{ID: req.ID, Err: fmt.Sprintf("rpc: unknown method %q", req.Method)})
				return
			}
			ctx := context.Background()
			if req.TimeoutNS > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutNS))
				defer cancel()
			}
			out, err := h(ctx, req.Body)
			if err != nil {
				reply(envelope{ID: req.ID, Err: err.Error(), Code: errCode(err)})
				return
			}
			body, err := json.Marshal(out)
			if err != nil {
				reply(envelope{ID: req.ID, Err: err.Error()})
				return
			}
			reply(envelope{ID: req.ID, Body: body})
		}(req)
	}
}

// errCode maps a handler failure to its wire code ("" for plain errors),
// so typed error classes survive the string-typed wire.
func errCode(err error) string {
	switch {
	case errors.Is(err, ErrOverloaded):
		return codeOverloaded
	case errors.Is(err, context.DeadlineExceeded):
		return codeDeadline
	}
	return ""
}

// Close stops accepting, drains in-flight handlers (their replies are
// flushed to the still-open connections), then tears connections down and
// waits for the connection goroutines. Requests arriving during the drain
// fail fast with ErrServerClosed. Close is idempotent.
func (s *Server) Close() {
	s.reqMu.Lock()
	if s.closing {
		s.reqMu.Unlock()
		return
	}
	s.closing = true
	s.reqMu.Unlock()

	close(s.closed)
	s.lis.Close()
	// Bound the drain: every in-flight reply must flush within drainTimeout
	// or fail with a deadline error, so a stalled client (one that stopped
	// reading, with a full TCP buffer) cannot wedge Close. All admitted
	// handlers run on conns registered before closing was set, so this
	// snapshot covers every write the drain waits on.
	deadline := time.Now().Add(drainTimeout)
	s.mu.Lock()
	for conn := range s.conns {
		conn.SetWriteDeadline(deadline)
	}
	s.mu.Unlock()
	s.reqWG.Wait()
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.connWG.Wait()
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.lis.Addr() }

// Client multiplexes calls over one connection.
type Client struct {
	conn net.Conn
	wmu  sync.Mutex
	w    *bufio.Writer

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan envelope
	err     error
}

// Dial connects to a server, blocking until the connection lands or the
// network gives up. Prefer DialTimeout for anything that must not hang on
// an unroutable address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// DialTimeout is Dial with a bound on connection establishment (0 means
// no bound, i.e. Dial).
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient speaks the protocol over an established connection — the seam
// fault injectors and alternative transports plug into.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:    conn,
		w:       bufio.NewWriter(conn),
		pending: map[uint64]chan envelope{},
	}
	go c.readLoop()
	return c
}

// fail marks the client dead with a typed error (keeping the first cause)
// and unblocks every pending call by closing its channel.
func (c *Client) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = err
	}
	for id, ch := range c.pending {
		close(ch)
		delete(c.pending, id)
	}
}

func (c *Client) readLoop() {
	r := bufio.NewReader(c.conn)
	for {
		var env envelope
		if err := readFrame(r, &env); err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrConnectionLost, err))
			return
		}
		c.mu.Lock()
		ch := c.pending[env.ID]
		delete(c.pending, env.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- env
		}
	}
}

// Call invokes method with req, decoding the response into resp (which may
// be nil for fire-and-check calls). After the transport dies or Close is
// called, Call fails fast with the typed cause (ErrClientClosed,
// ErrConnectionLost).
func (c *Client) Call(method string, req, resp any) error {
	return c.CallContext(context.Background(), method, req, resp)
}

// CallContext is Call with a per-call deadline: the context's remaining
// budget rides the request envelope (the server bounds the handler with
// it), and a context that expires while the call is in flight abandons the
// reply and returns ctx.Err(). The connection stays usable — a late reply
// to an abandoned id is dropped by the read loop.
func (c *Client) CallContext(ctx context.Context, method string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	env := envelope{Method: method, Body: body}
	if dl, ok := ctx.Deadline(); ok {
		budget := time.Until(dl)
		if budget <= 0 {
			return context.DeadlineExceeded
		}
		// The server gets 7/8 of the caller's budget: a handler that runs
		// to its deadline (e.g. degrading to an incumbent plan) still has
		// the remaining 1/8 for its reply to cross the wire before the
		// caller's own context abandons the call.
		env.TimeoutNS = (budget - budget/8).Nanoseconds()
	}

	ch := make(chan envelope, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return err
	}
	c.nextID++
	id := c.nextID
	env.ID = id
	c.pending[id] = ch
	c.mu.Unlock()

	// Marshal and limit failures above are the caller's; from here on, any
	// failure is the transport's, and poisons the connection.
	frame, err := encodeFrame(env)
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return err
	}
	c.wmu.Lock()
	_, err = c.w.Write(frame)
	if err == nil {
		err = c.w.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		// A half-written frame has desynced the stream for every user of
		// the connection, so the whole client fails typed — unless Close or
		// the read loop got there first, whose cause wins.
		c.fail(fmt.Errorf("%w: write: %v", ErrConnectionLost, err))
		c.mu.Lock()
		delete(c.pending, id)
		err := c.err
		c.mu.Unlock()
		return err
	}

	select {
	case env, ok := <-ch:
		if !ok {
			// The connection died (or Close ran) before a reply arrived.
			c.mu.Lock()
			err := c.err
			c.mu.Unlock()
			if err == nil {
				err = ErrConnectionLost
			}
			return err
		}
		return decodeReply(env, resp)
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return ctx.Err()
	}
}

// decodeReply surfaces a reply envelope as a typed error or the decoded
// response body.
func decodeReply(env envelope, resp any) error {
	if env.Err != "" {
		switch env.Code {
		case codeServerClosed:
			return ErrServerClosed
		case codeOverloaded:
			return wrapCoded(env.Err, ErrOverloaded)
		case codeDeadline:
			return wrapCoded(env.Err, context.DeadlineExceeded)
		}
		return errors.New(env.Err)
	}
	if resp != nil {
		return json.Unmarshal(env.Body, resp)
	}
	return nil
}

// wrapCoded rebuilds a typed error from its wire string: the server-side
// message usually ends in the base error's own text (it wrapped the same
// sentinel), which is cut before re-wrapping so the text doesn't double.
func wrapCoded(msg string, base error) error {
	if msg == base.Error() {
		return base
	}
	if trimmed, ok := strings.CutSuffix(msg, ": "+base.Error()); ok {
		msg = trimmed
	}
	return fmt.Errorf("%s: %w", msg, base)
}

// Close tears the connection down; pending and subsequent calls fail with
// ErrClientClosed.
func (c *Client) Close() error {
	c.fail(ErrClientClosed)
	return c.conn.Close()
}
