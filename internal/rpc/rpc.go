// Package rpc is a minimal request/response message layer over TCP, the
// stand-in for the paper's gRPC control plane (§5.5 "topology broadcast
// (using grpc)"). Frames are length-prefixed JSON; each request carries an
// id echoed by the response, so one connection multiplexes concurrent
// calls. Stdlib only.
package rpc

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// MaxFrame bounds a frame to keep a corrupt length prefix from allocating
// unbounded memory.
const MaxFrame = 64 << 20

// frame writes one length-prefixed JSON message.
func writeFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if len(body) > MaxFrame {
		return fmt.Errorf("rpc: frame of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// readFrame reads one length-prefixed JSON message into v.
func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return fmt.Errorf("rpc: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

// envelope wraps every wire message.
type envelope struct {
	ID     uint64          `json:"id"`
	Method string          `json:"method,omitempty"`
	Body   json.RawMessage `json:"body,omitempty"`
	Err    string          `json:"err,omitempty"`
}

// Handler serves one method: it receives the raw request body and returns
// the response value or an error.
type Handler func(body json.RawMessage) (any, error)

// Server dispatches incoming calls on a listener.
type Server struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	conns    map[net.Conn]struct{}
	lis      net.Listener
	wg       sync.WaitGroup
	closed   chan struct{}
}

// NewServer returns a server that owns the listener.
func NewServer(lis net.Listener) *Server {
	return &Server{
		handlers: map[string]Handler{},
		conns:    map[net.Conn]struct{}{},
		lis:      lis,
		closed:   make(chan struct{}),
	}
}

// Handle registers a method handler; it must be called before Serve.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// Serve accepts connections until Close; it returns after the listener
// closes.
func (s *Server) Serve() {
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	var wmu sync.Mutex
	w := bufio.NewWriter(conn)
	reply := func(env envelope) {
		wmu.Lock()
		defer wmu.Unlock()
		if err := writeFrame(w, env); err == nil {
			w.Flush()
		}
	}
	for {
		var req envelope
		if err := readFrame(r, &req); err != nil {
			return
		}
		s.mu.RLock()
		h := s.handlers[req.Method]
		s.mu.RUnlock()
		go func(req envelope) {
			if h == nil {
				reply(envelope{ID: req.ID, Err: fmt.Sprintf("rpc: unknown method %q", req.Method)})
				return
			}
			out, err := h(req.Body)
			if err != nil {
				reply(envelope{ID: req.ID, Err: err.Error()})
				return
			}
			body, err := json.Marshal(out)
			if err != nil {
				reply(envelope{ID: req.ID, Err: err.Error()})
				return
			}
			reply(envelope{ID: req.ID, Body: body})
		}(req)
	}
}

// Close stops accepting, tears down active connections, and waits for the
// connection goroutines to drain. Pending calls on those connections fail.
func (s *Server) Close() {
	close(s.closed)
	s.lis.Close()
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.lis.Addr() }

// Client multiplexes calls over one connection.
type Client struct {
	conn net.Conn
	wmu  sync.Mutex
	w    *bufio.Writer

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan envelope
	err     error
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		w:       bufio.NewWriter(conn),
		pending: map[uint64]chan envelope{},
	}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	r := bufio.NewReader(c.conn)
	for {
		var env envelope
		if err := readFrame(r, &env); err != nil {
			c.mu.Lock()
			c.err = fmt.Errorf("rpc: connection lost: %w", err)
			for id, ch := range c.pending {
				ch <- envelope{ID: id, Err: c.err.Error()}
				delete(c.pending, id)
			}
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		ch := c.pending[env.ID]
		delete(c.pending, env.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- env
		}
	}
}

// Call invokes method with req, decoding the response into resp (which may
// be nil for fire-and-check calls).
func (c *Client) Call(method string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	ch := make(chan envelope, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err = writeFrame(c.w, envelope{ID: id, Method: method, Body: body})
	if err == nil {
		err = c.w.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return err
	}

	env := <-ch
	if env.Err != "" {
		return errors.New(env.Err)
	}
	if resp != nil {
		return json.Unmarshal(env.Body, resp)
	}
	return nil
}

// Close tears the connection down; pending calls fail.
func (c *Client) Close() error { return c.conn.Close() }
