package rpc

import (
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
)

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(lis)
	s.Handle("echo", func(body json.RawMessage) (any, error) {
		var msg string
		if err := json.Unmarshal(body, &msg); err != nil {
			return nil, err
		}
		return msg, nil
	})
	s.Handle("add", func(body json.RawMessage) (any, error) {
		var in [2]int
		if err := json.Unmarshal(body, &in); err != nil {
			return nil, err
		}
		return in[0] + in[1], nil
	})
	s.Handle("fail", func(json.RawMessage) (any, error) {
		return nil, fmt.Errorf("deliberate failure")
	})
	go s.Serve()
	t.Cleanup(s.Close)
	return s, lis.Addr().String()
}

func TestCallRoundTrip(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var out string
	if err := c.Call("echo", "hello", &out); err != nil {
		t.Fatal(err)
	}
	if out != "hello" {
		t.Errorf("echo = %q", out)
	}
	var sum int
	if err := c.Call("add", [2]int{3, 4}, &sum); err != nil {
		t.Fatal(err)
	}
	if sum != 7 {
		t.Errorf("add = %d", sum)
	}
}

func TestServerError(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Call("fail", nil, nil); err == nil || !strings.Contains(err.Error(), "deliberate") {
		t.Errorf("want handler error, got %v", err)
	}
	if err := c.Call("nope", nil, nil); err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Errorf("want unknown-method error, got %v", err)
	}
}

func TestConcurrentCallsMultiplex(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var sum int
			if err := c.Call("add", [2]int{i, i}, &sum); err != nil {
				errs <- err
				return
			}
			if sum != 2*i {
				errs <- fmt.Errorf("call %d: got %d", i, sum)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestConnectionLossFailsPending(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(lis)
	block := make(chan struct{})
	s.Handle("hang", func(json.RawMessage) (any, error) {
		<-block
		return nil, nil
	})
	go s.Serve()
	c, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- c.Call("hang", nil, nil) }()
	// Kill the server while the call is in flight.
	s.Close()
	close(block)
	if err := <-done; err == nil {
		t.Fatal("pending call must fail on connection loss")
	}
	// Subsequent calls fail fast.
	if err := c.Call("hang", nil, nil); err == nil {
		t.Fatal("calls on a dead client must fail")
	}
}

func TestFrameLimit(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	big := strings.Repeat("x", MaxFrame+1)
	if err := c.Call("echo", big, nil); err == nil {
		t.Fatal("oversized frame must be rejected")
	}
}
