package rpc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(lis)
	s.Handle("echo", func(_ context.Context, body json.RawMessage) (any, error) {
		var msg string
		if err := json.Unmarshal(body, &msg); err != nil {
			return nil, err
		}
		return msg, nil
	})
	s.Handle("add", func(_ context.Context, body json.RawMessage) (any, error) {
		var in [2]int
		if err := json.Unmarshal(body, &in); err != nil {
			return nil, err
		}
		return in[0] + in[1], nil
	})
	s.Handle("fail", func(context.Context, json.RawMessage) (any, error) {
		return nil, fmt.Errorf("deliberate failure")
	})
	go s.Serve()
	t.Cleanup(s.Close)
	return s, lis.Addr().String()
}

func TestCallRoundTrip(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var out string
	if err := c.Call("echo", "hello", &out); err != nil {
		t.Fatal(err)
	}
	if out != "hello" {
		t.Errorf("echo = %q", out)
	}
	var sum int
	if err := c.Call("add", [2]int{3, 4}, &sum); err != nil {
		t.Fatal(err)
	}
	if sum != 7 {
		t.Errorf("add = %d", sum)
	}
}

func TestServerError(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Call("fail", nil, nil); err == nil || !strings.Contains(err.Error(), "deliberate") {
		t.Errorf("want handler error, got %v", err)
	}
	if err := c.Call("nope", nil, nil); err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Errorf("want unknown-method error, got %v", err)
	}
}

func TestConcurrentCallsMultiplex(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var sum int
			if err := c.Call("add", [2]int{i, i}, &sum); err != nil {
				errs <- err
				return
			}
			if sum != 2*i {
				errs <- fmt.Errorf("call %d: got %d", i, sum)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestGracefulCloseDrainsInFlight(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(lis)
	block := make(chan struct{})
	entered := make(chan struct{})
	s.Handle("hang", func(context.Context, json.RawMessage) (any, error) {
		close(entered)
		<-block
		return nil, nil
	})
	go s.Serve()
	c, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- c.Call("hang", nil, nil) }()
	<-entered
	// Graceful shutdown drains the in-flight handler: Close must not return
	// while it is still blocked, and the pending call gets its real reply.
	started := make(chan struct{})
	closed := make(chan struct{})
	go func() {
		close(started)
		s.Close()
		close(closed)
	}()
	<-started
	select {
	case <-closed:
		t.Fatal("Close returned while a handler was still in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(block)
	if err := <-done; err != nil {
		t.Fatalf("drained call must receive its reply, got %v", err)
	}
	<-closed
	// The drain's last act tears connections down: subsequent calls fail
	// fast with the typed connection-loss error.
	waitClientDead(t, c)
	if err := c.Call("hang", nil, nil); !errors.Is(err, ErrConnectionLost) {
		t.Fatalf("call after server shutdown = %v, want ErrConnectionLost", err)
	}
}

// waitClientDead blocks until the client's read loop has observed the torn
// connection (the tear-down is asynchronous from the client's view).
func waitClientDead(t *testing.T, c *Client) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		dead := c.err != nil
		c.mu.Unlock()
		if dead {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("client never noticed the lost connection")
}

// TestCallAfterClientClose: the call-after-close regression — Close fails
// pending calls and every later call with the typed ErrClientClosed.
func TestCallAfterClientClose(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(lis)
	block := make(chan struct{})
	s.Handle("hang", func(context.Context, json.RawMessage) (any, error) {
		<-block
		return nil, nil
	})
	go s.Serve()
	defer s.Close()
	// LIFO: the handler must unblock before Close starts its drain.
	defer close(block)
	c, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	pending := make(chan error, 1)
	go func() { pending <- c.Call("hang", nil, nil) }()
	waitPending(t, c)
	c.Close()
	if err := <-pending; !errors.Is(err, ErrClientClosed) {
		t.Errorf("pending call after Close = %v, want ErrClientClosed", err)
	}
	if err := c.Call("hang", nil, nil); !errors.Is(err, ErrClientClosed) {
		t.Errorf("call after Close = %v, want ErrClientClosed", err)
	}
}

// waitPending blocks until the client has one registered in-flight call.
func waitPending(t *testing.T, c *Client) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		n := len(c.pending)
		c.mu.Unlock()
		if n > 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("call never became pending")
}

// TestRequestDuringDrainRefusedTyped: a request that reaches the server
// after Close started (while an earlier handler is still draining) is
// refused with ErrServerClosed instead of hanging or dying opaquely.
func TestRequestDuringDrainRefusedTyped(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(lis)
	block := make(chan struct{})
	entered := make(chan struct{})
	s.Handle("hang", func(context.Context, json.RawMessage) (any, error) {
		close(entered)
		<-block
		return "done", nil
	})
	go s.Serve()
	c, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	first := make(chan error, 1)
	go func() { first <- c.Call("hang", nil, nil) }()
	<-entered

	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	// Wait for Close to flip the draining flag, then issue a second call on
	// the still-open connection: it must be refused with the typed error.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		s.reqMu.Lock()
		closing := s.closing
		s.reqMu.Unlock()
		if closing {
			break
		}
		time.Sleep(time.Millisecond)
	}
	second := make(chan error, 1)
	go func() { second <- c.Call("hang", nil, nil) }()
	if err := <-second; !errors.Is(err, ErrServerClosed) {
		t.Errorf("call during drain = %v, want ErrServerClosed", err)
	}
	close(block)
	if err := <-first; err != nil {
		t.Errorf("drained call = %v, want success", err)
	}
	<-closed
}

// TestAbruptConnectionLossFailsPending: a transport that dies without a
// graceful shutdown fails pending calls with ErrConnectionLost.
func TestAbruptConnectionLossFailsPending(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		conn, err := lis.Accept()
		if err == nil {
			conn.Close()
		}
	}()
	c, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Call("anything", nil, nil); !errors.Is(err, ErrConnectionLost) {
		t.Errorf("call on severed transport = %v, want ErrConnectionLost", err)
	}
}

// TestServerCloseIdempotent: double Close must not panic or deadlock.
func TestServerCloseIdempotent(t *testing.T) {
	s, _ := startServer(t)
	s.Close()
	s.Close()
}

func TestFrameLimit(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	big := strings.Repeat("x", MaxFrame+1)
	if err := c.Call("echo", big, nil); err == nil {
		t.Fatal("oversized frame must be rejected")
	}
}

// TestCloseUnblocksStalledClientDrain: a client that sends a request and
// then stops reading fills its TCP receive buffer, so the in-flight reply
// write blocks. Close must still return — the drain is bounded by
// drainTimeout, after which the stalled write fails and the handler's
// reqWG slot frees.
func TestCloseUnblocksStalledClientDrain(t *testing.T) {
	old := drainTimeout
	drainTimeout = 200 * time.Millisecond
	defer func() { drainTimeout = old }()

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(lis)
	// A reply far larger than any loopback socket buffer, so the write
	// cannot complete until the client reads — which it never does.
	big := strings.Repeat("x", 16<<20)
	handlerDone := make(chan struct{})
	s.Handle("big", func(context.Context, json.RawMessage) (any, error) {
		close(handlerDone)
		return big, nil
	})
	go s.Serve()

	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, envelope{ID: 1, Method: "big"}); err != nil {
		t.Fatal(err)
	}
	<-handlerDone // the reply write is in flight (and about to block)

	done := make(chan struct{})
	go func() {
		s.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close wedged on a client that stopped reading")
	}
}

// TestDialTimeoutNonRoutable: rpc.Dial against a non-routable address
// blocks until the OS gives up (minutes); DialTimeout must fail within the
// caller's bound instead.
func TestDialTimeoutNonRoutable(t *testing.T) {
	// 203.0.113.0/24 is TEST-NET-3 (RFC 5737): reserved, never routed. A
	// sandbox with a transparent proxy may complete any handshake; detect
	// that and skip — the bound is only observable against a blackhole.
	const blackhole = "203.0.113.1:7477"
	if c, err := net.DialTimeout("tcp", blackhole, 250*time.Millisecond); err == nil {
		c.Close()
		t.Skip("environment routes TEST-NET-3 (transparent proxy); cannot observe a dial timeout")
	}
	start := time.Now()
	_, err := DialTimeout(blackhole, 100*time.Millisecond)
	if err == nil {
		t.Fatal("dial to a non-routable address succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("DialTimeout took %v, want ~100ms", elapsed)
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		// Some environments refuse instantly instead of timing out; either
		// way the call must not hang, which the elapsed check proved.
		t.Logf("non-timeout dial failure (acceptable): %v", err)
	}
}

// TestCallContextDeadlinePropagates: the context budget rides the request
// envelope, bounds the handler's own context, and the deadline failure
// comes back typed as context.DeadlineExceeded — end to end.
func TestCallContextDeadlinePropagates(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(lis)
	sawDeadline := make(chan bool, 1)
	s.Handle("wait", func(ctx context.Context, _ json.RawMessage) (any, error) {
		_, ok := ctx.Deadline()
		sawDeadline <- ok
		<-ctx.Done()
		return nil, fmt.Errorf("search cut off: %w", ctx.Err())
	})
	go s.Serve()
	defer s.Close()
	c, err := DialTimeout(lis.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	err = c.CallContext(ctx, "wait", nil, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline call = %v, want context.DeadlineExceeded", err)
	}
	if !<-sawDeadline {
		t.Fatal("handler context carried no deadline")
	}
	// The connection survives an expired call: the next call works.
	s.Handle("ok", func(context.Context, json.RawMessage) (any, error) { return "fine", nil })
	var out string
	if err := c.Call("ok", nil, &out); err != nil || out != "fine" {
		t.Fatalf("call after expired call: %q, %v", out, err)
	}
	// An already-expired context never touches the wire.
	expired, cancel2 := context.WithTimeout(context.Background(), -time.Second)
	defer cancel2()
	if err := c.CallContext(expired, "ok", nil, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("pre-expired call = %v, want context.DeadlineExceeded", err)
	}
}

// TestOverloadedCodeRoundTrip: a handler error wrapping ErrOverloaded is
// coded on the wire and comes back errors.Is-matchable, with the message
// intact and the sentinel text not doubled.
func TestOverloadedCodeRoundTrip(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(lis)
	s.Handle("shed", func(context.Context, json.RawMessage) (any, error) {
		return nil, fmt.Errorf("planner queue full (8 waiting): %w", ErrOverloaded)
	})
	go s.Serve()
	defer s.Close()
	c, err := DialTimeout(lis.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Call("shed", nil, nil)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("shed call = %v, want ErrOverloaded", err)
	}
	want := "planner queue full (8 waiting): rpc: server overloaded"
	if err.Error() != want {
		t.Fatalf("error text %q, want %q", err, want)
	}
}

// TestWriteFailureTypedConnectionLost: a call whose request write fails
// (dead socket) surfaces ErrConnectionLost, not a raw syscall error — the
// class retry layers key on.
func TestWriteFailureTypedConnectionLost(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c.conn.Close() // sever the transport under the client
	// Depending on timing either the write or the read loop notices first;
	// both must converge on the typed error.
	for i := 0; i < 3; i++ {
		if err := c.Call("echo", "x", nil); !errors.Is(err, ErrConnectionLost) {
			t.Fatalf("call %d on severed conn = %v, want ErrConnectionLost", i, err)
		}
	}
}

// TestWrapCoded covers the wire-string reassembly corner cases.
func TestWrapCoded(t *testing.T) {
	if err := wrapCoded(ErrOverloaded.Error(), ErrOverloaded); err != ErrOverloaded {
		t.Fatalf("bare sentinel = %v", err)
	}
	err := wrapCoded("ctx: "+ErrOverloaded.Error(), ErrOverloaded)
	if !errors.Is(err, ErrOverloaded) || err.Error() != "ctx: rpc: server overloaded" {
		t.Fatalf("suffix trim = %q", err)
	}
	err = wrapCoded("unrelated text", ErrOverloaded)
	if !errors.Is(err, ErrOverloaded) || err.Error() != "unrelated text: rpc: server overloaded" {
		t.Fatalf("plain wrap = %q", err)
	}
}
