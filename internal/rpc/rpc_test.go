package rpc

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(lis)
	s.Handle("echo", func(body json.RawMessage) (any, error) {
		var msg string
		if err := json.Unmarshal(body, &msg); err != nil {
			return nil, err
		}
		return msg, nil
	})
	s.Handle("add", func(body json.RawMessage) (any, error) {
		var in [2]int
		if err := json.Unmarshal(body, &in); err != nil {
			return nil, err
		}
		return in[0] + in[1], nil
	})
	s.Handle("fail", func(json.RawMessage) (any, error) {
		return nil, fmt.Errorf("deliberate failure")
	})
	go s.Serve()
	t.Cleanup(s.Close)
	return s, lis.Addr().String()
}

func TestCallRoundTrip(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var out string
	if err := c.Call("echo", "hello", &out); err != nil {
		t.Fatal(err)
	}
	if out != "hello" {
		t.Errorf("echo = %q", out)
	}
	var sum int
	if err := c.Call("add", [2]int{3, 4}, &sum); err != nil {
		t.Fatal(err)
	}
	if sum != 7 {
		t.Errorf("add = %d", sum)
	}
}

func TestServerError(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Call("fail", nil, nil); err == nil || !strings.Contains(err.Error(), "deliberate") {
		t.Errorf("want handler error, got %v", err)
	}
	if err := c.Call("nope", nil, nil); err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Errorf("want unknown-method error, got %v", err)
	}
}

func TestConcurrentCallsMultiplex(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var sum int
			if err := c.Call("add", [2]int{i, i}, &sum); err != nil {
				errs <- err
				return
			}
			if sum != 2*i {
				errs <- fmt.Errorf("call %d: got %d", i, sum)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestGracefulCloseDrainsInFlight(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(lis)
	block := make(chan struct{})
	entered := make(chan struct{})
	s.Handle("hang", func(json.RawMessage) (any, error) {
		close(entered)
		<-block
		return nil, nil
	})
	go s.Serve()
	c, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- c.Call("hang", nil, nil) }()
	<-entered
	// Graceful shutdown drains the in-flight handler: Close must not return
	// while it is still blocked, and the pending call gets its real reply.
	started := make(chan struct{})
	closed := make(chan struct{})
	go func() {
		close(started)
		s.Close()
		close(closed)
	}()
	<-started
	select {
	case <-closed:
		t.Fatal("Close returned while a handler was still in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(block)
	if err := <-done; err != nil {
		t.Fatalf("drained call must receive its reply, got %v", err)
	}
	<-closed
	// The drain's last act tears connections down: subsequent calls fail
	// fast with the typed connection-loss error.
	waitClientDead(t, c)
	if err := c.Call("hang", nil, nil); !errors.Is(err, ErrConnectionLost) {
		t.Fatalf("call after server shutdown = %v, want ErrConnectionLost", err)
	}
}

// waitClientDead blocks until the client's read loop has observed the torn
// connection (the tear-down is asynchronous from the client's view).
func waitClientDead(t *testing.T, c *Client) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		dead := c.err != nil
		c.mu.Unlock()
		if dead {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("client never noticed the lost connection")
}

// TestCallAfterClientClose: the call-after-close regression — Close fails
// pending calls and every later call with the typed ErrClientClosed.
func TestCallAfterClientClose(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(lis)
	block := make(chan struct{})
	s.Handle("hang", func(json.RawMessage) (any, error) {
		<-block
		return nil, nil
	})
	go s.Serve()
	defer s.Close()
	// LIFO: the handler must unblock before Close starts its drain.
	defer close(block)
	c, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	pending := make(chan error, 1)
	go func() { pending <- c.Call("hang", nil, nil) }()
	waitPending(t, c)
	c.Close()
	if err := <-pending; !errors.Is(err, ErrClientClosed) {
		t.Errorf("pending call after Close = %v, want ErrClientClosed", err)
	}
	if err := c.Call("hang", nil, nil); !errors.Is(err, ErrClientClosed) {
		t.Errorf("call after Close = %v, want ErrClientClosed", err)
	}
}

// waitPending blocks until the client has one registered in-flight call.
func waitPending(t *testing.T, c *Client) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		n := len(c.pending)
		c.mu.Unlock()
		if n > 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("call never became pending")
}

// TestRequestDuringDrainRefusedTyped: a request that reaches the server
// after Close started (while an earlier handler is still draining) is
// refused with ErrServerClosed instead of hanging or dying opaquely.
func TestRequestDuringDrainRefusedTyped(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(lis)
	block := make(chan struct{})
	entered := make(chan struct{})
	s.Handle("hang", func(json.RawMessage) (any, error) {
		close(entered)
		<-block
		return "done", nil
	})
	go s.Serve()
	c, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	first := make(chan error, 1)
	go func() { first <- c.Call("hang", nil, nil) }()
	<-entered

	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	// Wait for Close to flip the draining flag, then issue a second call on
	// the still-open connection: it must be refused with the typed error.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		s.reqMu.Lock()
		closing := s.closing
		s.reqMu.Unlock()
		if closing {
			break
		}
		time.Sleep(time.Millisecond)
	}
	second := make(chan error, 1)
	go func() { second <- c.Call("hang", nil, nil) }()
	if err := <-second; !errors.Is(err, ErrServerClosed) {
		t.Errorf("call during drain = %v, want ErrServerClosed", err)
	}
	close(block)
	if err := <-first; err != nil {
		t.Errorf("drained call = %v, want success", err)
	}
	<-closed
}

// TestAbruptConnectionLossFailsPending: a transport that dies without a
// graceful shutdown fails pending calls with ErrConnectionLost.
func TestAbruptConnectionLossFailsPending(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		conn, err := lis.Accept()
		if err == nil {
			conn.Close()
		}
	}()
	c, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Call("anything", nil, nil); !errors.Is(err, ErrConnectionLost) {
		t.Errorf("call on severed transport = %v, want ErrConnectionLost", err)
	}
}

// TestServerCloseIdempotent: double Close must not panic or deadlock.
func TestServerCloseIdempotent(t *testing.T) {
	s, _ := startServer(t)
	s.Close()
	s.Close()
}

func TestFrameLimit(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	big := strings.Repeat("x", MaxFrame+1)
	if err := c.Call("echo", big, nil); err == nil {
		t.Fatal("oversized frame must be rejected")
	}
}

// TestCloseUnblocksStalledClientDrain: a client that sends a request and
// then stops reading fills its TCP receive buffer, so the in-flight reply
// write blocks. Close must still return — the drain is bounded by
// drainTimeout, after which the stalled write fails and the handler's
// reqWG slot frees.
func TestCloseUnblocksStalledClientDrain(t *testing.T) {
	old := drainTimeout
	drainTimeout = 200 * time.Millisecond
	defer func() { drainTimeout = old }()

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(lis)
	// A reply far larger than any loopback socket buffer, so the write
	// cannot complete until the client reads — which it never does.
	big := strings.Repeat("x", 16<<20)
	handlerDone := make(chan struct{})
	s.Handle("big", func(json.RawMessage) (any, error) {
		close(handlerDone)
		return big, nil
	})
	go s.Serve()

	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, envelope{ID: 1, Method: "big"}); err != nil {
		t.Fatal(err)
	}
	<-handlerDone // the reply write is in flight (and about to block)

	done := make(chan struct{})
	go func() {
		s.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close wedged on a client that stopped reading")
	}
}
