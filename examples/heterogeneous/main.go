// Heterogeneous: the paper's motivating scenario (§1, Figure 1). Only 16
// A100s are allocatable, but 16 V100s are idle in the same zone. Sailor
// decides whether and how to use them, load-balancing layers and
// tensor-parallel degrees across the two generations.
package main

import (
	"fmt"
	"log"

	"repro/sailor"
)

func main() {
	log.SetFlags(0)

	job := sailor.OPT350M()
	sys, err := sailor.New(job, []sailor.GPUType{sailor.A100, sailor.V100})
	if err != nil {
		log.Fatal(err)
	}
	zone := sailor.GCPZone("us-central1", 'a')

	show := func(label string, pool *sailor.Pool) float64 {
		res, err := sys.Plan(pool, sailor.MaxThroughput, sailor.Constraints{})
		if err != nil {
			log.Fatal(err)
		}
		real, err := sys.Measure(res.Plan)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %.3f iters/sec  $%.2f/iter  %s\n",
			label, real.Throughput(), real.Cost(), res.Plan)
		return real.Throughput()
	}

	a100 := show("16 A100:", sailor.NewPool().Set(zone, sailor.A100, 16))
	show("16 V100:", sailor.NewPool().Set(zone, sailor.V100, 16))
	both := show("16 A100 + 16 V100:", sailor.NewPool().
		Set(zone, sailor.A100, 16).Set(zone, sailor.V100, 16))

	fmt.Printf("\nheterogeneity gain over A100-only: %.2fx (paper Fig. 1: ~1.15x)\n", both/a100)
}
