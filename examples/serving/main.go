// Example serving: the planner as a service. Boots a sailor-serve-style
// daemon in-process, connects two tenants over the wire, and shows plan →
// replan → simulate round trips plus the service counters. Tenants share
// one profiled system (same model and GPU set) but keep independent warm
// caches, and every response is byte-identical to in-process planning.
package main

import (
	"context"
	"fmt"
	"log"
	"net"

	"repro/sailor"
)

func main() {
	log.SetFlags(0)

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := sailor.NewServer(lis, sailor.NewService(sailor.ServiceConfig{Workers: 2}))
	go srv.Serve()
	defer srv.Close()
	fmt.Printf("daemon listening on %s (wire schema v%d)\n\n", srv.Addr(), sailor.WireVersion)

	// The availability story: 16 A100s, then a preemption takes half.
	zone := sailor.GCPZone("us-central1", 'a')
	before := sailor.NewPool().Set(zone, sailor.A100, 16)
	after := sailor.NewPool().Set(zone, sailor.A100, 8)

	for _, tenant := range []string{"team-nlp", "team-vision"} {
		c, err := sailor.Dial(srv.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		if err := c.OpenJob(tenant, sailor.OPT350M(), []sailor.GPUType{sailor.A100}, 0); err != nil {
			log.Fatal(err)
		}
		res, err := c.Plan(context.Background(), tenant, before, sailor.MaxThroughput, sailor.Constraints{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s plan:   %s (%.3f iters/sec)\n", tenant, res.Plan, res.Estimate.Throughput())

		re, err := c.Replan(context.Background(), tenant, res.Plan, after, sailor.MaxThroughput, sailor.Constraints{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s replan: %s (cache hits %d, explored %d)\n", tenant, re.Plan, re.CacheHits, re.Explored)

		est, err := c.Simulate(tenant, re.Plan)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s simulate: %.3f s/iter, $%.3f/iter\n\n", tenant, est.IterTime, est.Cost())
	}

	c, err := sailor.Dial(srv.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("service stats: %d requests (%.1f qps), %d plans, %d replans, %d simulates\n",
		st.Requests, st.QPS, st.Plans, st.Replans, st.Simulates)
	fmt.Printf("profiled systems: %d cached, %d hits, %d misses (tenants share shapes)\n",
		st.SystemsCached, st.SystemCacheHits, st.SystemCacheMisses)
}
