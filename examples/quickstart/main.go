// Quickstart: profile a model, plan a job on a small A100 pool, check the
// simulator against the testbed substitute, and print the result.
package main

import (
	"fmt"
	"log"

	"repro/sailor"
)

func main() {
	log.SetFlags(0)

	// 1. Describe the training job and profile it on the GPU types in the
	// resource pool (paper §4.1; synthetic profiles in this repo).
	job := sailor.OPT350M()
	sys, err := sailor.New(job, []sailor.GPUType{sailor.A100})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %s (%.0fM params) in ~%s of simulated GPU time\n",
		job.Name, float64(job.TotalParams())/1e6, sys.ProfilingOverhead().Round(1e9))

	// 2. Declare what is available: 16 A100s in one zone.
	zone := sailor.GCPZone("us-central1", 'a')
	pool := sailor.NewPool().Set(zone, sailor.A100, 16)

	// 3. Plan for maximum throughput.
	res, err := sys.Plan(pool, sailor.MaxThroughput, sailor.Constraints{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %s\n", res.Plan)
	fmt.Printf("planner: %.3f iters/sec, $%.3f/iter, found in %s\n",
		res.Estimate.Throughput(), res.Estimate.Cost(), res.SearchTime.Round(1e6))

	// 4. Deploy on the ground-truth engine and compare.
	real, err := sys.Measure(res.Plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured: %.3f iters/sec, peak %.1f GiB (fits: %v)\n",
		real.Throughput(), float64(real.PeakMemory)/(1<<30), real.FitsMemory)
}
