// Geo-distributed: plan across two regions under a budget (§5.2.3-5.2.4).
// Data parallelism stays inside a region (heuristic H5); only the pipeline
// crosses regions, and inter-region egress is billed per byte, so the
// planner weighs throughput against transfer cost.
package main

import (
	"fmt"
	"log"

	"repro/sailor"
)

func main() {
	log.SetFlags(0)

	job := sailor.OPT350M()
	sys, err := sailor.New(job, []sailor.GPUType{sailor.A100})
	if err != nil {
		log.Fatal(err)
	}

	pool := sailor.NewPool().
		Set(sailor.GCPZone("us-central1", 'a'), sailor.A100, 16).
		Set(sailor.GCPZone("us-central1", 'b'), sailor.A100, 16).
		Set(sailor.GCPZone("us-west1", 'a'), sailor.A100, 32)

	// Unconstrained: maximize throughput.
	res, err := sys.Plan(pool, sailor.MaxThroughput, sailor.Constraints{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("max-throughput: %.3f iters/sec, $%.3f/iter (egress $%.3f)\n",
		res.Estimate.Throughput(), res.Estimate.Cost(), res.Estimate.EgressCost)
	fmt.Printf("  plan: %s\n", res.Plan)
	fmt.Printf("  zones used: %v\n", res.Plan.Zones())

	// Budget-capped: the planner trades GPUs and regions for cost.
	capped, err := sys.Plan(pool, sailor.MaxThroughput, sailor.Constraints{MaxCostPerIter: 0.15})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbudget $0.15/iter: %.3f iters/sec, $%.3f/iter\n",
		capped.Estimate.Throughput(), capped.Estimate.Cost())
	fmt.Printf("  plan: %s\n", capped.Plan)

	// Cost objective with a throughput floor (§5.2.4 scenario 1).
	cheap, err := sys.Plan(pool, sailor.MinCost, sailor.Constraints{MinThroughput: 0.1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmin-cost @ >=0.1 it/s: %.3f iters/sec, $%.3f/iter, %d GPUs\n",
		cheap.Estimate.Throughput(), cheap.Estimate.Cost(), cheap.Plan.GPUCount())
}
