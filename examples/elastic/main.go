// Elastic: replay a named availability scenario and let the controller
// reconfigure the job kill-free as capacity churns (§4.4, §5.5). Every
// replan after the first is warm-started: the previous plan seeds the
// incumbent and the planner's warm cache skips DP regions earlier replans
// already solved, which the per-reconfig cache-hit counts make visible.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/sailor"
)

func main() {
	log.SetFlags(0)

	// The preemption-storm scenario: spot capacity repeatedly collapses to
	// a fraction of the grant and recovers in bursts. Swap in any other
	// registered scenario (sailor.Scenarios(), cmd/sailor-replay -list).
	scenario := sailor.ScenarioPreemptionStorm()
	tr := scenario.Trace(42)

	job := sailor.OPT350M()
	sys, err := sailor.New(job, scenario.GPUs)
	if err != nil {
		log.Fatal(err)
	}

	ctrl := sys.NewController()
	rep, err := ctrl.RunElastic(tr, time.Minute)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scenario %q: trained %d iterations over %.1fh of availability churn\n",
		scenario.Name, rep.IterationsDone, tr.Horizon.Hours())
	fmt.Printf("rollback losses: %d iterations; planning %.3fs total, %d warm-cache hits\n",
		rep.LostIterations, rep.PlanningSeconds, rep.PlanCacheHits)
	for i, t := range rep.Reconfigs {
		gpus := 0
		if i < len(rep.PlansUsed) {
			gpus = rep.PlansUsed[i].GPUCount()
		}
		fmt.Printf("reconfig #%2d -> %2d GPUs: total %5.2fs "+
			"(plan %.3fs/%d hits, cleanup %.1fs, broadcast %.2fs, groups %.2fs, model %.1fs, data %.1fs)\n",
			i, gpus, t.Total(), t.Planning, t.PlanCacheHits, t.Cleanup, t.Broadcast,
			t.GroupInit, t.ModelRedef, t.Dataloader)
	}
}
