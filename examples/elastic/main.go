// Elastic: replay the paper's Figure-2 availability pattern and let the
// controller reconfigure the job kill-free as A100s appear and vanish
// (§4.4, §5.5), reporting per-phase reconfiguration costs and checkpoint
// rollbacks.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/sailor"
)

func main() {
	log.SetFlags(0)

	job := sailor.OPT350M()
	sys, err := sailor.New(job, []sailor.GPUType{sailor.A100})
	if err != nil {
		log.Fatal(err)
	}

	zone := sailor.GCPZone("us-central1", 'a')
	// A compressed dynamic-availability scenario: GPUs arrive in waves,
	// then half are preempted.
	tr := sailor.SyntheticTrace(4*time.Hour,
		sailor.TraceEvent{At: 0, Zone: zone, GPU: sailor.A100, Delta: 8},
		sailor.TraceEvent{At: 45 * time.Minute, Zone: zone, GPU: sailor.A100, Delta: 8},
		sailor.TraceEvent{At: 2 * time.Hour, Zone: zone, GPU: sailor.A100, Delta: 16},
		sailor.TraceEvent{At: 3 * time.Hour, Zone: zone, GPU: sailor.A100, Delta: -16},
	)

	ctrl := sys.NewController()
	rep, err := ctrl.RunElastic(tr, time.Minute)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("trained %d iterations over 4h of availability churn\n", rep.IterationsDone)
	fmt.Printf("rollback losses: %d iterations\n", rep.LostIterations)
	for i, t := range rep.Reconfigs {
		gpus := 0
		if i < len(rep.PlansUsed) {
			gpus = rep.PlansUsed[i].GPUCount()
		}
		fmt.Printf("reconfig #%d -> %2d GPUs: total %5.2fs "+
			"(plan %.2fs, cleanup %.1fs, broadcast %.2fs, groups %.2fs, model %.1fs, data %.1fs)\n",
			i, gpus, t.Total(), t.Planning, t.Cleanup, t.Broadcast, t.GroupInit, t.ModelRedef, t.Dataloader)
	}
}
