package main

// The planner perf harness behind -json: a fixed suite of cold-search,
// warm-replan, and multi-tenant-service benchmarks whose results are
// written as a versioned JSON document (BENCH_planner.json). The committed
// document is the repo's perf trajectory; CI regenerates and validates it
// on every change so planner regressions show up as a diff, not a surprise.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/planner"
	"repro/internal/profiler"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/sailor"
)

// benchSchemaVersion is the BENCH_planner.json schema version; -validate
// rejects documents from a different schema by name.
const benchSchemaVersion = 1

// benchResult is one benchmark's row in the document.
type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Explored and CacheHits are planner telemetry from one instrumented
	// run of the bench body (search work, not wall-clock).
	Explored  int `json:"explored"`
	CacheHits int `json:"cache_hits"`
	// Iters is the iteration count testing.Benchmark settled on — needed
	// for the benchstat text lines, deliberately kept out of the JSON
	// schema (iteration counts are machine noise, not trajectory).
	Iters int `json:"-"`
}

// benchDoc is the BENCH_planner.json document.
type benchDoc struct {
	V       int           `json:"v"`
	Kind    string        `json:"kind"`
	Go      string        `json:"go"`
	Workers int           `json:"workers"`
	Benches []benchResult `json:"benches"`
}

// perfLab builds the shared evaluator for the planner benches.
func perfLab(gpus ...core.GPUType) (*model.Config, *sim.Simulator, error) {
	cfg := model.OPT350M()
	prof, err := profiler.Collect(cfg, gpus, nil, profiler.Options{Seed: 1})
	if err != nil {
		return nil, nil, err
	}
	return &cfg, sim.New(cfg, prof), nil
}

// runPerfSuite executes the perf suite and assembles the document.
func runPerfSuite(workers int) (benchDoc, error) {
	doc := benchDoc{V: benchSchemaVersion, Kind: "planner-bench", Go: runtime.Version(), Workers: workers}

	zone := cluster.GCPZone("us-central1", 'a')
	pools := []struct {
		name string
		gpus []core.GPUType
		pool *cluster.Pool
	}{
		{"planner_cold/homogeneous128", []core.GPUType{core.A100},
			cluster.NewPool().Set(zone, core.A100, 128)},
		{"planner_cold/heterogeneous64", []core.GPUType{core.A100, core.V100},
			cluster.NewPool().Set(zone, core.A100, 32).Set(zone, core.V100, 32)},
	}
	for _, pc := range pools {
		cfg, ev, err := perfLab(pc.gpus...)
		if err != nil {
			return doc, err
		}
		mk := func() *planner.Planner {
			return planner.New(*cfg, ev, planner.Options{
				Objective: core.MaxThroughput, Heuristics: planner.AllHeuristics(), Workers: workers,
			})
		}
		probe, err := mk().Plan(pc.pool)
		if err != nil {
			return doc, fmt.Errorf("%s: %w", pc.name, err)
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := mk().Plan(pc.pool); err != nil {
					b.Fatal(err)
				}
			}
		})
		doc.Benches = append(doc.Benches, row(pc.name, r, probe.Explored, probe.CacheHits))
	}

	// Warm replan chain over the preemption-storm availability sequence.
	sc, ok := trace.ScenarioByName("preemption-storm")
	if !ok {
		return doc, fmt.Errorf("preemption-storm scenario not registered")
	}
	stormPools := sc.Trace(1).DistinctPools()
	cfg, ev, err := perfLab(core.A100)
	if err != nil {
		return doc, err
	}
	warmChain := func(pl *planner.Planner) (hits, explored int, err error) {
		var prev core.Plan
		for _, pool := range stormPools {
			res, err := pl.Replan(prev, pool)
			if err != nil {
				return 0, 0, err
			}
			prev = res.Plan
			hits += res.CacheHits
			explored += res.Explored
		}
		return hits, explored, nil
	}
	// The delta-scoped probe is disabled so this row keeps measuring the
	// plain warm path (replan_incremental below measures the probe).
	warmPl := planner.New(*cfg, ev, planner.Options{
		Objective: core.MaxThroughput, Heuristics: planner.AllHeuristics(),
		Workers: workers, Warm: planner.NewWarmCache(), DisableIncremental: true,
	})
	if _, _, err := warmChain(warmPl); err != nil { // populate the cache
		return doc, err
	}
	hits, explored, err := warmChain(warmPl)
	if err != nil {
		return doc, err
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := warmChain(warmPl); err != nil {
				b.Fatal(err)
			}
		}
	})
	doc.Benches = append(doc.Benches, row("replan_warm/preemption-storm", r, explored, hits))

	// Delta-scoped incremental replans: a descent of one-zone single-GPU
	// shrinks, each replanned against the memo of the search one step
	// earlier. The warm cache is re-seeded off the clock every op, so no
	// step ever finds its exact keys cached — every step exercises the
	// probe, not a plain warm hit.
	incBase, incSteps := experiments.ReplanDescent()
	incChain := func(pl *planner.Planner, prev core.Plan) (hits, explored int, err error) {
		for _, pool := range incSteps {
			res, err := pl.Replan(prev, pool)
			if err != nil {
				return 0, 0, err
			}
			prev = res.Plan
			hits += res.CacheHits
			explored += res.Explored
		}
		return hits, explored, nil
	}
	mkInc := func() (*planner.Planner, core.Plan, error) {
		pl := planner.New(*cfg, ev, planner.Options{
			Objective: core.MaxThroughput, Heuristics: planner.AllHeuristics(),
			Workers: workers, Warm: planner.NewWarmCache(),
		})
		res, err := pl.Plan(incBase)
		return pl, res.Plan, err
	}
	probePl, probePrev, err := mkInc()
	if err != nil {
		return doc, err
	}
	incHits, incExplored, err := incChain(probePl, probePrev)
	if err != nil {
		return doc, err
	}
	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			pl, prev, err := mkInc()
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, _, err := incChain(pl, prev); err != nil {
				b.Fatal(err)
			}
		}
	})
	doc.Benches = append(doc.Benches, row("replan_incremental/delta=1zone", r, incExplored, incHits))

	// Speculative serving: a diurnal-wave replan chain through a Service
	// whose forecaster has locked onto the cycle, so every measured replan
	// is answered from the prefetch cache. Prefetches resolve off the clock
	// (Quiesce between steps) — ns/op is the request latency of one
	// forecast hit, the zero-latency reconfiguration headline. Timed by
	// hand over a fixed op count: the hit path is microseconds, and
	// testing.Benchmark would schedule hundreds of thousands of ops whose
	// untimed prefetch rounds dominate wall-clock.
	dsc, ok := trace.ScenarioByName("diurnal-wave")
	if !ok {
		return doc, fmt.Errorf("diurnal-wave scenario not registered")
	}
	diurnal := dsc.TraceWith(1, trace.ScenarioOpts{Horizon: 72 * time.Hour, Base: 16}).DistinctPools()
	specSvc := sailor.NewService(sailor.ServiceConfig{Workers: 1, MaxConcurrent: 4})
	if err := specSvc.OpenJob("spec", sailor.OPT350M(), []core.GPUType{core.A100}, 0); err != nil {
		return doc, err
	}
	var specPrev core.Plan
	for pass := 0; pass < 2; pass++ { // lock the forecaster, warm the cache
		if _, specPrev, err = experiments.DriveSpeculativeReplans(specSvc, "spec", diurnal, specPrev); err != nil {
			return doc, err
		}
	}
	const specCycles = 3
	var (
		specT                            time.Duration
		m0, m1                           runtime.MemStats
		specN, specHits, sExpl, sCacheHi int
	)
	specSvc.Quiesce()
	runtime.ReadMemStats(&m0)
	for c := 0; c < specCycles; c++ {
		for _, pool := range diurnal {
			specSvc.Quiesce()
			t0 := time.Now()
			res, err := specSvc.Replan(context.Background(), "spec", specPrev, pool,
				core.MaxThroughput, core.Constraints{})
			specT += time.Since(t0)
			if err != nil {
				return doc, err
			}
			specN++
			if res.SpeculativeHit {
				specHits++
			}
			sExpl += res.Explored
			sCacheHi += res.CacheHits
			specPrev = res.Plan
		}
	}
	specSvc.Quiesce()
	runtime.ReadMemStats(&m1)
	if specHits*10 < specN*9 {
		return doc, fmt.Errorf("replan_speculative: only %d/%d forecast hits", specHits, specN)
	}
	r = testing.BenchmarkResult{N: specN, T: specT,
		MemAllocs: m1.Mallocs - m0.Mallocs, MemBytes: m1.TotalAlloc - m0.TotalAlloc}
	doc.Benches = append(doc.Benches, row("replan_speculative/diurnal-wave", r, sExpl, sCacheHi))

	// Multi-tenant service front door: one op = one plan per tenant.
	const tenants = 4
	var svcPools []*cluster.Pool
	for i := 0; i < tenants; i++ {
		svcPools = append(svcPools, cluster.NewPool().Set(zone, core.A100, 16+8*i))
	}
	svc := sailor.NewService(sailor.ServiceConfig{Workers: 1, MaxConcurrent: workers})
	for i := 0; i < tenants; i++ {
		if err := svc.OpenJob(fmt.Sprintf("bench-%d", i), sailor.OPT350M(), []core.GPUType{core.A100}, 0); err != nil {
			return doc, err
		}
	}
	svcOp := func() (explored, hits int, err error) {
		var wg sync.WaitGroup
		results := make([]sailor.PlanResult, tenants)
		errs := make([]error, tenants)
		for t := 0; t < tenants; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				results[t], errs[t] = svc.Plan(context.Background(), fmt.Sprintf("bench-%d", t),
					svcPools[t], core.MaxThroughput, core.Constraints{})
			}(t)
		}
		wg.Wait()
		for t := 0; t < tenants; t++ {
			if errs[t] != nil {
				return 0, 0, errs[t]
			}
			explored += results[t].Explored
			hits += results[t].CacheHits
		}
		return explored, hits, nil
	}
	svcExplored, svcHits, err := svcOp()
	if err != nil {
		return doc, err
	}
	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := svcOp(); err != nil {
				b.Fatal(err)
			}
		}
	})
	doc.Benches = append(doc.Benches, row("service_plan/tenants=4", r, svcExplored, svcHits))

	// Fleet scheduler: one op = the whole preemption-storm trace driven
	// through a shared capacity ledger with N contending jobs (per-job cap
	// 8 GPUs, fleet base 4N) — every event preempts leases in admission
	// order and Rebalance replans the broken jobs warm in priority order.
	for _, jobs := range []int{4, 16} {
		fleetTrace := sc.TraceWith(1, trace.ScenarioOpts{Base: 4 * jobs})
		// Speculation off: these rows pin the foreground rebalance cost;
		// the prefetch layer has its own row (replan_speculative above).
		fleetSvc := sailor.NewService(sailor.ServiceConfig{Workers: 1, WithoutSpeculation: true})
		for i := 0; i < jobs; i++ {
			if err := fleetSvc.OpenJob(fmt.Sprintf("fleet-%d", i), sailor.OPT350M(),
				[]core.GPUType{core.A100}, jobs-i); err != nil {
				return doc, err
			}
		}
		if _, _, err := experiments.DriveFleetStorm(fleetSvc, fleetTrace, 8); err != nil { // warm the caches
			return doc, err
		}
		fExplored, fHits, err := experiments.DriveFleetStorm(fleetSvc, fleetTrace, 8)
		if err != nil {
			return doc, err
		}
		r = testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := experiments.DriveFleetStorm(fleetSvc, fleetTrace, 8); err != nil {
					b.Fatal(err)
				}
			}
		})
		doc.Benches = append(doc.Benches, row(fmt.Sprintf("fleet_rebalance/jobs=%d", jobs), r, fExplored, fHits))
	}

	// Cold fleet admission: one op = reopen one job per GPU type (dropping
	// every warm cache and lease), reset the ledger to a four-type pool,
	// and run a single Rebalance pass that admits all four from scratch.
	// The disjoint single-type quotas make every candidate solo, so the
	// partitioned rebalance searches them concurrently (MaxConcurrent =
	// workers); at workers=1 this is the sequential baseline the committed
	// trajectory pins.
	coldTypes := []core.GPUType{core.A100, core.V100, core.RTX3090, core.T4}
	coldPool := cluster.NewPool()
	for _, g := range coldTypes {
		coldPool.Set(zone, g, 64)
	}
	coldSvc := sailor.NewService(sailor.ServiceConfig{Workers: 1, MaxConcurrent: workers})
	coldModel := sailor.OPT350M()
	if _, _, err := experiments.DriveFleetColdRebalance(coldSvc, coldModel, coldTypes, coldPool); err != nil { // profile the per-type Systems
		return doc, err
	}
	cExplored, cHits, err := experiments.DriveFleetColdRebalance(coldSvc, coldModel, coldTypes, coldPool)
	if err != nil {
		return doc, err
	}
	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := experiments.DriveFleetColdRebalance(coldSvc, coldModel, coldTypes, coldPool); err != nil {
				b.Fatal(err)
			}
		}
	})
	doc.Benches = append(doc.Benches, row("fleet_rebalance_cold/jobs=4", r, cExplored, cHits))
	return doc, nil
}

func row(name string, r testing.BenchmarkResult, explored, hits int) benchResult {
	return benchResult{
		Name:        name,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Explored:    explored,
		CacheHits:   hits,
		Iters:       r.N,
	}
}

// printBenchstat writes the document's rows as benchstat-compatible
// benchmark lines (name, iteration count, value-unit pairs). Several
// -count runs piped into benchstat yield means and confidence intervals;
// the planner telemetry rides along as custom units.
func printBenchstat(w io.Writer, doc benchDoc, header bool) {
	if header {
		fmt.Fprintf(w, "goos: %s\ngoarch: %s\npkg: repro/cmd/sailor-bench\n", runtime.GOOS, runtime.GOARCH)
	}
	for _, b := range doc.Benches {
		fmt.Fprintf(w, "Benchmark_%s \t%8d\t%14.0f ns/op\t%10d B/op\t%8d allocs/op\t%8d explored/op\t%8d cache-hits/op\n",
			b.Name, b.Iters, b.NsPerOp, b.BytesPerOp, b.AllocsPerOp, b.Explored, b.CacheHits)
	}
}

// writeBenchJSON runs the suite count times, printing one benchstat block
// per run, and writes the document from the final run to path.
func writeBenchJSON(path string, workers, count int, log io.Writer) error {
	var doc benchDoc
	for i := 0; i < count; i++ {
		d, err := runPerfSuite(workers)
		if err != nil {
			return err
		}
		printBenchstat(log, d, i == 0)
		doc = d
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(log, "wrote %s (%d benches, workers=%d, count=%d)\n", path, len(doc.Benches), workers, count)
	return nil
}

// compareBenchJSON is the CI perf gate: for every row the baseline and the
// candidate share, allocs/op may not regress by more than maxGrowth
// (allocation counts are deterministic, so this is a real gate even on
// shared runners); ns/op deltas are printed but only informational.
// Rows present in one document only are reported and skipped, so adding
// or retiring a bench never trips the gate.
func compareBenchJSON(newPath, basePath string, maxGrowth float64, w io.Writer) error {
	load := func(path string) (map[string]benchResult, []string, error) {
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		var doc benchDoc
		if err := json.Unmarshal(raw, &doc); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		m := make(map[string]benchResult, len(doc.Benches))
		var order []string
		for _, b := range doc.Benches {
			m[b.Name] = b
			order = append(order, b.Name)
		}
		return m, order, nil
	}
	base, _, err := load(basePath)
	if err != nil {
		return err
	}
	cand, order, err := load(newPath)
	if err != nil {
		return err
	}
	var failures []string
	for _, name := range order {
		n := cand[name]
		o, ok := base[name]
		if !ok {
			fmt.Fprintf(w, "%-36s new row (no baseline)\n", name)
			continue
		}
		allocsDelta := ratioDelta(float64(n.AllocsPerOp), float64(o.AllocsPerOp))
		nsDelta := ratioDelta(n.NsPerOp, o.NsPerOp)
		verdict := "ok"
		if allocsDelta > maxGrowth {
			verdict = "FAIL"
			failures = append(failures, fmt.Sprintf("%s: allocs/op %d -> %d (%+.1f%%, limit %+.0f%%)",
				name, o.AllocsPerOp, n.AllocsPerOp, 100*allocsDelta, 100*maxGrowth))
		}
		fmt.Fprintf(w, "%-36s allocs/op %8d -> %8d (%+6.1f%%) %s  [ns/op %+.1f%%, informational]\n",
			name, o.AllocsPerOp, n.AllocsPerOp, 100*allocsDelta, verdict, 100*nsDelta)
	}
	for name := range base {
		if _, ok := cand[name]; !ok {
			fmt.Fprintf(w, "%-36s retired (baseline only)\n", name)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("allocs/op regression:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// ratioDelta is (n/o)-1 with zero baselines treated as no regression when
// the candidate is also zero and an unbounded one otherwise.
func ratioDelta(n, o float64) float64 {
	if o == 0 {
		if n == 0 {
			return 0
		}
		return 1e9
	}
	return n/o - 1
}

// validateBenchJSON checks a BENCH_planner.json document against the
// schema: correct version and kind, at least one bench, sane fields. CI
// runs this after regenerating the document.
func validateBenchJSON(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc benchDoc
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("%s: malformed document: %w", path, err)
	}
	if doc.V != benchSchemaVersion {
		return fmt.Errorf("%s: schema version %d, want %d", path, doc.V, benchSchemaVersion)
	}
	if doc.Kind != "planner-bench" {
		return fmt.Errorf("%s: kind %q, want \"planner-bench\"", path, doc.Kind)
	}
	if len(doc.Benches) == 0 {
		return fmt.Errorf("%s: no benches recorded", path)
	}
	for _, b := range doc.Benches {
		if b.Name == "" {
			return fmt.Errorf("%s: bench with empty name", path)
		}
		if b.NsPerOp <= 0 {
			return fmt.Errorf("%s: %s: ns_per_op %v not positive", path, b.Name, b.NsPerOp)
		}
		if b.AllocsPerOp < 0 || b.BytesPerOp < 0 || b.Explored < 0 || b.CacheHits < 0 {
			return fmt.Errorf("%s: %s: negative counter", path, b.Name)
		}
	}
	return nil
}
