// Command sailor-bench regenerates the paper's tables and figures, and
// maintains the repo's planner perf trajectory.
//
// Usage:
//
//	sailor-bench -id all            # every experiment
//	sailor-bench -id fig7           # one experiment
//	sailor-bench -id fig9b -cap 60s # raise the slow-planner cap
//	sailor-bench -list
//	sailor-bench -json                       # run the planner perf suite,
//	                                         # write BENCH_planner.json
//	sailor-bench -json -bench-out out.json   # ... to a custom path
//	sailor-bench -json -count 5              # 5 suite runs, benchstat lines
//	                                         # per run (pipe to benchstat)
//	sailor-bench -validate BENCH_planner.json # schema-check a document
//	sailor-bench -compare new.json -baseline BENCH_planner.json
//	                                         # CI gate: fail on allocs/op
//	                                         # regressions > 10%
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sailor-bench: ")

	id := flag.String("id", "all", "experiment id or 'all'")
	list := flag.Bool("list", false, "list experiment ids")
	quick := flag.Bool("quick", false, "shrink cluster sizes for a fast pass")
	cap := flag.Duration("cap", 10*time.Second, "deadline for slow searchers (paper caps Metis at 300s)")
	workers := flag.Int("workers", runtime.NumCPU(), "Sailor planner search parallelism (goroutines)")
	jsonOut := flag.Bool("json", false, "run the planner perf suite and write -bench-out instead of experiments")
	benchOut := flag.String("bench-out", "BENCH_planner.json", "output path for the -json perf document")
	count := flag.Int("count", 1, "perf suite repetitions for -json; each run prints a benchstat-compatible block")
	validate := flag.String("validate", "", "schema-check a BENCH_planner.json document and exit")
	compare := flag.String("compare", "", "candidate BENCH_planner.json to gate against -baseline and exit")
	baseline := flag.String("baseline", "BENCH_planner.json", "baseline document for -compare")
	flag.Parse()
	if *workers <= 0 {
		*workers = runtime.NumCPU()
	}
	if *count <= 0 {
		*count = 1
	}

	if *validate != "" {
		if err := validateBenchJSON(*validate); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: valid planner-bench document (schema v%d)\n", *validate, benchSchemaVersion)
		return
	}
	if *compare != "" {
		if err := compareBenchJSON(*compare, *baseline, 0.10, os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s vs %s: allocs/op within the gate\n", *compare, *baseline)
		return
	}
	if *jsonOut {
		if err := writeBenchJSON(*benchOut, *workers, *count, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *list {
		for _, e := range experiments.IDs() {
			fmt.Println(e)
		}
		return
	}
	opts := experiments.Opts{Quick: *quick, SlowPlannerCap: *cap, Workers: *workers}

	ids := experiments.IDs()
	if *id != "all" {
		if _, ok := experiments.Registry[*id]; !ok {
			log.Fatalf("unknown experiment %q; use -list", *id)
		}
		ids = []string{*id}
	}
	failed := 0
	for _, e := range ids {
		start := time.Now()
		tab, err := experiments.Registry[e](opts)
		if err != nil {
			log.Printf("%s: %v", e, err)
			failed++
			continue
		}
		fmt.Printf("%s\n(regenerated in %s, search workers=%d)\n\n", tab, time.Since(start).Round(time.Millisecond), *workers)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
