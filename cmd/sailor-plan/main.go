// Command sailor-plan runs the Sailor planner against a resource quota and
// prints the chosen allocation, parallelization plan, and estimates.
//
// It drives the same serving API in two modes: in-process (an embedded
// sailor.Service) or, with -server, against a running sailor-serve daemon.
// -json switches the output to the versioned wire schema, machine-readable
// and byte-stable for identical inputs.
//
// Usage:
//
//	sailor-plan -model opt350m -quota us-central1-a:A100-40:16,us-central1-a:V100-16:16
//	sailor-plan -model gptneo27b -objective min-cost -min-throughput 0.05 -quota ...
//	sailor-plan -server 127.0.0.1:7477 -json -quota ...
//	sailor-plan -cpuprofile cpu.prof -memprofile mem.prof -quota ...  # pprof the search
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/wire"
	"repro/sailor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sailor-plan: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// planOutput is the -json document: versioned, built on the wire codec,
// byte-stable for identical inputs except result.search_time_ns.
type planOutput struct {
	V         int             `json:"v"`
	Model     string          `json:"model"`
	Params    int64           `json:"params"`
	Objective string          `json:"objective"`
	Workers   int             `json:"workers"`
	Server    string          `json:"server,omitempty"`
	Result    wire.PlanResult `json:"result"`
	Measured  *wire.Estimate  `json:"measured,omitempty"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sailor-plan", flag.ContinueOnError)
	modelName := fs.String("model", "opt350m", "model from the zoo (e.g. opt350m, gptneo27b, llama7b)")
	quota := fs.String("quota", "", "comma-separated zone:gpu:count triples, e.g. us-central1-a:A100-40:16")
	objective := fs.String("objective", "max-throughput", "max-throughput or min-cost")
	budget := fs.Float64("budget", 0, "max USD per iteration (0 = unconstrained)")
	minTput := fs.Float64("min-throughput", 0, "min iterations/sec (0 = unconstrained)")
	measure := fs.Bool("measure", false, "also run the plan on the ground-truth engine (in-process mode only)")
	workers := fs.Int("workers", runtime.NumCPU(), "planner search parallelism (goroutines; in-process mode)")
	server := fs.String("server", "", "drive a sailor-serve daemon at host:port instead of planning in-process")
	job := fs.String("job", "sailor-plan", "job name to open on the service")
	keep := fs.Bool("keep", false, "leave the job open on the daemon after planning (durable/recovery workflows)")
	jsonOut := fs.Bool("json", false, "emit the versioned wire-schema JSON document instead of text")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile at exit to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers <= 0 {
		*workers = runtime.NumCPU()
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		defer func() {
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("memprofile: %v", err)
			}
			f.Close()
		}()
	}

	m, err := sailor.ModelByName(*modelName)
	if err != nil {
		return err
	}
	pool, gpus, err := parseQuota(*quota)
	if err != nil {
		return err
	}
	obj, err := sailor.ParseObjective(*objective)
	if err != nil {
		return err
	}
	cons := sailor.Constraints{MaxCostPerIter: *budget, MinThroughput: *minTput}

	// Both modes speak the same API; only the transport differs.
	var api sailor.API
	if *server != "" {
		if *measure {
			return fmt.Errorf("-measure needs the in-process ground-truth engine; drop -server")
		}
		c, err := sailor.Dial(*server)
		if err != nil {
			return err
		}
		defer c.Close()
		api = c
	} else {
		api = sailor.NewService(sailor.ServiceConfig{Workers: *workers})
	}
	if err := api.OpenJob(*job, m, gpus, 0); err != nil {
		return err
	}
	// Release the job name so repeated invocations against a long-lived
	// daemon don't collide on "already open" — unless -keep asked for the
	// job to outlive this invocation (e.g. to survive a daemon restart and
	// prove durable recovery: a second open of the same name must fail).
	if !*keep {
		defer api.CloseJob(*job)
	}
	res, err := api.Plan(context.Background(), *job, pool, obj, cons)
	if err != nil {
		return err
	}

	var measured *sailor.Estimate
	if *measure {
		sys, err := sailor.New(m, gpus, sailor.WithWorkers(*workers))
		if err != nil {
			return err
		}
		real, err := sys.Measure(res.Plan)
		if err != nil {
			return err
		}
		measured = &real
	}

	if *jsonOut {
		doc := planOutput{
			V:         sailor.WireVersion,
			Model:     m.Name,
			Params:    m.TotalParams(),
			Objective: obj.String(),
			Workers:   *workers,
			Server:    *server,
			Result:    wire.FromResult(res),
		}
		if measured != nil {
			e := wire.FromEstimate(*measured)
			doc.Measured = &e
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}

	fmt.Fprintf(out, "model:        %s (%d params)\n", m.Name, m.TotalParams())
	if *server != "" {
		fmt.Fprintf(out, "server:       %s (job %q, wire schema v%d)\n", *server, *job, sailor.WireVersion)
	}
	fmt.Fprintf(out, "plan:         %s\n", res.Plan)
	fmt.Fprintf(out, "GPUs:         %d\n", res.Plan.GPUCount())
	fmt.Fprintf(out, "est time:     %.3f s/iter (%.3f iters/sec)\n", res.Estimate.IterTime, res.Estimate.Throughput())
	fmt.Fprintf(out, "est cost:     $%.3f/iter (compute $%.3f + egress $%.3f)\n",
		res.Estimate.Cost(), res.Estimate.ComputeCost, res.Estimate.EgressCost)
	fmt.Fprintf(out, "peak memory:  %.1f GiB on %s\n", float64(res.Estimate.PeakMemory)/(1<<30), res.Estimate.PeakMemoryGPU)
	fmt.Fprintf(out, "search time:  %s (%d nodes explored, %d workers)\n", res.SearchTime, res.Explored, *workers)
	if measured != nil {
		fmt.Fprintf(out, "measured:     %.3f s/iter (%.3f iters/sec), $%.3f/iter\n",
			measured.IterTime, measured.Throughput(), measured.Cost())
	}
	return nil
}

// parseQuota wraps the shared sailor.ParseQuota with the -quota flag hint.
func parseQuota(s string) (*sailor.Pool, []sailor.GPUType, error) {
	if s == "" {
		return nil, nil, fmt.Errorf("missing -quota; example: -quota us-central1-a:A100-40:16,us-central1-b:V100-16:32")
	}
	return sailor.ParseQuota(s)
}
