// Command sailor-plan runs the Sailor planner against a resource quota and
// prints the chosen allocation, parallelization plan, and estimates.
//
// Usage:
//
//	sailor-plan -model opt350m -quota us-central1-a:A100-40:16,us-central1-a:V100-16:16
//	sailor-plan -model gptneo27b -objective min-cost -min-throughput 0.05 -quota ...
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/sailor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sailor-plan: ")

	modelName := flag.String("model", "opt350m", "model from the zoo (e.g. opt350m, gptneo27b, llama7b)")
	quota := flag.String("quota", "", "comma-separated zone:gpu:count triples, e.g. us-central1-a:A100-40:16")
	objective := flag.String("objective", "max-throughput", "max-throughput or min-cost")
	budget := flag.Float64("budget", 0, "max USD per iteration (0 = unconstrained)")
	minTput := flag.Float64("min-throughput", 0, "min iterations/sec (0 = unconstrained)")
	measure := flag.Bool("measure", false, "also run the plan on the ground-truth engine")
	workers := flag.Int("workers", runtime.NumCPU(), "planner search parallelism (goroutines)")
	flag.Parse()
	if *workers <= 0 {
		*workers = runtime.NumCPU()
	}

	m, err := modelByName(*modelName)
	if err != nil {
		log.Fatal(err)
	}
	pool, gpus, err := parseQuota(*quota)
	if err != nil {
		log.Fatal(err)
	}
	obj := sailor.MaxThroughput
	if *objective == "min-cost" {
		obj = sailor.MinCost
	}

	sys, err := sailor.New(m, gpus, sailor.WithWorkers(*workers))
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Plan(pool, obj, sailor.Constraints{
		MaxCostPerIter: *budget,
		MinThroughput:  *minTput,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("model:        %s (%d params)\n", m.Name, m.TotalParams())
	fmt.Printf("plan:         %s\n", res.Plan)
	fmt.Printf("GPUs:         %d\n", res.Plan.GPUCount())
	fmt.Printf("est time:     %.3f s/iter (%.3f iters/sec)\n", res.Estimate.IterTime, res.Estimate.Throughput())
	fmt.Printf("est cost:     $%.3f/iter (compute $%.3f + egress $%.3f)\n",
		res.Estimate.Cost(), res.Estimate.ComputeCost, res.Estimate.EgressCost)
	fmt.Printf("peak memory:  %.1f GiB on %s\n", float64(res.Estimate.PeakMemory)/(1<<30), res.Estimate.PeakMemoryGPU)
	fmt.Printf("search time:  %s (%d nodes explored, %d workers)\n", res.SearchTime, res.Explored, *workers)

	if *measure {
		real, err := sys.Measure(res.Plan)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("measured:     %.3f s/iter (%.3f iters/sec), $%.3f/iter\n",
			real.IterTime, real.Throughput(), real.Cost())
	}
}

func modelByName(name string) (sailor.Model, error) {
	// The whole zoo resolves through the shared facade resolver, so every
	// CLI accepts the same tolerant spellings.
	return sailor.ModelByName(name)
}

func parseQuota(s string) (*sailor.Pool, []sailor.GPUType, error) {
	if s == "" {
		fmt.Fprintln(os.Stderr, "missing -quota; example: -quota us-central1-a:A100-40:16,us-central1-b:V100-16:32")
		os.Exit(2)
	}
	pool := sailor.NewPool()
	seen := map[sailor.GPUType]bool{}
	var gpus []sailor.GPUType
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(part, ":")
		if len(fields) != 3 {
			return nil, nil, fmt.Errorf("bad quota entry %q (want zone:gpu:count)", part)
		}
		zoneName := fields[0]
		region := zoneName
		if i := strings.LastIndex(zoneName, "-"); i > 0 {
			region = zoneName[:i]
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil || n <= 0 {
			return nil, nil, fmt.Errorf("bad count in %q", part)
		}
		g := sailor.GPUType(fields[1])
		pool.Set(sailor.Zone{Region: region, Name: zoneName}, g, n)
		if !seen[g] {
			seen[g] = true
			gpus = append(gpus, g)
		}
	}
	return pool, gpus, nil
}
