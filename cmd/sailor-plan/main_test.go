package main

import "testing"

func TestParseQuota(t *testing.T) {
	pool, gpus, err := parseQuota("us-central1-a:A100-40:16,us-central1-b:V100-16:32")
	if err != nil {
		t.Fatal(err)
	}
	if got := pool.TotalGPUs(); got != 48 {
		t.Errorf("TotalGPUs = %d, want 48", got)
	}
	if len(gpus) != 2 {
		t.Errorf("gpus = %v, want 2 distinct types", gpus)
	}
	zs := pool.Zones()
	if len(zs) != 2 || zs[0].Region != "us-central1" {
		t.Errorf("zones = %v", zs)
	}
}

func TestParseQuotaErrors(t *testing.T) {
	for _, bad := range []string{
		"zone-only",
		"z:A100-40:notanumber",
		"z:A100-40:-4",
		"z:A100-40:0",
	} {
		if _, _, err := parseQuota(bad); err == nil {
			t.Errorf("parseQuota(%q) should fail", bad)
		}
	}
}

func TestModelByName(t *testing.T) {
	for _, name := range []string{"opt350m", "OPT-350M", "gptneo27b"} {
		if _, err := modelByName(name); err != nil {
			t.Errorf("modelByName(%q): %v", name, err)
		}
	}
	if _, err := modelByName("bert"); err == nil {
		t.Error("unknown model should fail")
	}
}
