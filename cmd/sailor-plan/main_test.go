package main

import (
	"bytes"
	"net"
	"strings"
	"sync"
	"testing"

	"repro/internal/testutil"
	"repro/sailor"
)

// TestJSONGolden pins the -json document shape: the versioned wire schema
// with only search_time_ns varying between runs.
func TestJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-model", "opt350m",
		"-quota", "us-central1-a:A100-40:8,us-central1-a:V100-16:4",
		"-workers", "1", "-json",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	got := testutil.NormalizeJSON(t, buf.Bytes(), func(m map[string]any) {
		m["result"].(map[string]any)["search_time_ns"] = 0.0
	})
	testutil.CheckGolden(t, "plan.golden.json", got)
}

// TestServerModeMatchesLocal: the same CLI drives the daemon, and — with
// two tenants planning concurrently — every invocation produces the
// in-process answer byte-for-byte (after zeroing wall-clock fields).
func TestServerModeMatchesLocal(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := sailor.NewServer(lis, sailor.NewService(sailor.ServiceConfig{Workers: 1}))
	go srv.Serve()
	defer srv.Close()
	addr := lis.Addr().String()

	quota := "us-central1-a:A100-40:8"
	var local bytes.Buffer
	if err := run([]string{"-model", "opt350m", "-quota", quota, "-workers", "1", "-json"}, &local); err != nil {
		t.Fatal(err)
	}
	zero := func(m map[string]any) {
		m["result"].(map[string]any)["search_time_ns"] = 0.0
		delete(m, "server")
	}
	want := testutil.NormalizeJSON(t, local.Bytes(), zero)

	var wg sync.WaitGroup
	outs := make([]bytes.Buffer, 2)
	errs := make([]error, 2)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			errs[g] = run([]string{
				"-model", "opt350m", "-quota", quota, "-workers", "1", "-json",
				"-server", addr, "-job", []string{"tenant-a", "tenant-b"}[g],
			}, &outs[g])
		}(g)
	}
	wg.Wait()
	for g := 0; g < 2; g++ {
		if errs[g] != nil {
			t.Fatalf("tenant %d: %v", g, errs[g])
		}
		got := testutil.NormalizeJSON(t, outs[g].Bytes(), zero)
		if !bytes.Equal(got, want) {
			t.Errorf("tenant %d: server-mode JSON != local JSON:\n%s\nvs\n%s", g, got, want)
		}
	}
}

// TestServerModeHumanOutput: text mode mentions the server and the plan.
func TestServerModeHumanOutput(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := sailor.NewServer(lis, sailor.NewService(sailor.ServiceConfig{Workers: 1}))
	go srv.Serve()
	defer srv.Close()
	var buf bytes.Buffer
	err = run([]string{"-model", "opt350m", "-quota", "z-a:A100-40:4",
		"-server", lis.Addr().String()}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"server:", "plan:", "wire schema v1"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if err := run([]string{"-model", "opt350m", "-quota", "z-a:A100-40:4",
		"-server", lis.Addr().String(), "-measure"}, &buf); err == nil {
		t.Error("-measure with -server must be rejected")
	}
}

func TestParseQuota(t *testing.T) {
	pool, gpus, err := parseQuota("us-central1-a:A100-40:16,us-central1-b:V100-16:32")
	if err != nil {
		t.Fatal(err)
	}
	if got := pool.TotalGPUs(); got != 48 {
		t.Errorf("TotalGPUs = %d, want 48", got)
	}
	if len(gpus) != 2 {
		t.Errorf("gpus = %v, want 2 distinct types", gpus)
	}
	zs := pool.Zones()
	if len(zs) != 2 || zs[0].Region != "us-central1" {
		t.Errorf("zones = %v", zs)
	}
}

func TestParseQuotaErrors(t *testing.T) {
	for _, bad := range []string{
		"zone-only",
		"z:A100-40:notanumber",
		"z:A100-40:-4",
		"z:A100-40:0",
	} {
		if _, _, err := parseQuota(bad); err == nil {
			t.Errorf("parseQuota(%q) should fail", bad)
		}
	}
}

func TestModelByName(t *testing.T) {
	for _, name := range []string{"opt350m", "OPT-350M", "gptneo27b"} {
		if _, err := sailor.ModelByName(name); err != nil {
			t.Errorf("ModelByName(%q): %v", name, err)
		}
	}
	if _, err := sailor.ModelByName("bert"); err == nil {
		t.Error("unknown model should fail")
	}
}
