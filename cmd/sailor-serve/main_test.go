package main

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/sailor"
)

// TestServeEndToEnd boots the daemon exactly as main does (via start) and
// drives it with two concurrent tenants, each planning a scenario's first
// availability snapshot and replanning the next one — the §5.5 control-
// plane loop over the wire. Run under -race in CI.
func TestServeEndToEnd(t *testing.T) {
	var banner strings.Builder
	srv, err := start([]string{"-addr", "127.0.0.1:0", "-workers", "2", "-max-concurrent", "2"}, &banner)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !strings.Contains(banner.String(), "listening on") {
		t.Errorf("start banner = %q", banner.String())
	}
	addr := srv.Addr().String()

	sc, ok := sailor.ScenarioByName("preemption-storm")
	if !ok {
		t.Fatal("preemption-storm not registered")
	}
	pools := sc.Trace(1).DistinctPools()
	if len(pools) < 2 {
		t.Fatalf("scenario yields %d pools, need >=2", len(pools))
	}

	var wg sync.WaitGroup
	plans := make([]string, 2)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := sailor.Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			job := []string{"tenant-a", "tenant-b"}[g]
			if err := c.OpenJob(job, sailor.OPT350M(), sc.GPUs); err != nil {
				t.Error(err)
				return
			}
			res, err := c.Plan(context.Background(), job, pools[0], sailor.MaxThroughput, sailor.Constraints{})
			if err != nil {
				t.Errorf("tenant %s plan: %v", job, err)
				return
			}
			re, err := c.Replan(context.Background(), job, res.Plan, pools[1], sailor.MaxThroughput, sailor.Constraints{})
			if err != nil {
				t.Errorf("tenant %s replan: %v", job, err)
				return
			}
			plans[g] = res.Plan.String() + "\n" + re.Plan.String()
			if err := c.CloseJob(job); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
	if plans[0] == "" || plans[0] != plans[1] {
		t.Errorf("tenants with identical jobs must get identical plans:\n%q\nvs\n%q", plans[0], plans[1])
	}

	c, err := sailor.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Plans != 2 || st.Replans != 2 {
		t.Errorf("stats plans/replans = %d/%d, want 2/2", st.Plans, st.Replans)
	}
	if st.SystemCacheHits != 1 {
		t.Errorf("same-shape tenants should share one profiled system: hits = %d, want 1", st.SystemCacheHits)
	}
	if st.JobsOpen != 0 {
		t.Errorf("JobsOpen = %d, want 0 after CloseJob", st.JobsOpen)
	}
}

// TestStartBadFlags: flag and listen errors surface instead of crashing.
func TestStartBadFlags(t *testing.T) {
	var out strings.Builder
	if _, err := start([]string{"-addr", "not-an-address"}, &out); err == nil {
		t.Error("bad listen address must fail")
	}
	if _, err := start([]string{"-nope"}, &out); err == nil {
		t.Error("unknown flag must fail")
	}
}
