package main

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/sailor"
)

// TestServeEndToEnd boots the daemon exactly as main does (via start) and
// drives it with two concurrent tenants, each planning a scenario's first
// availability snapshot and replanning the next one — the §5.5 control-
// plane loop over the wire. Run under -race in CI.
func TestServeEndToEnd(t *testing.T) {
	var banner strings.Builder
	srv, err := start([]string{"-addr", "127.0.0.1:0", "-workers", "2", "-max-concurrent", "2"}, &banner)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !strings.Contains(banner.String(), "listening on") {
		t.Errorf("start banner = %q", banner.String())
	}
	addr := srv.Addr().String()

	sc, ok := sailor.ScenarioByName("preemption-storm")
	if !ok {
		t.Fatal("preemption-storm not registered")
	}
	pools := sc.Trace(1).DistinctPools()
	if len(pools) < 2 {
		t.Fatalf("scenario yields %d pools, need >=2", len(pools))
	}

	var wg sync.WaitGroup
	plans := make([]string, 2)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := sailor.Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			job := []string{"tenant-a", "tenant-b"}[g]
			if err := c.OpenJob(job, sailor.OPT350M(), sc.GPUs, 0); err != nil {
				t.Error(err)
				return
			}
			res, err := c.Plan(context.Background(), job, pools[0], sailor.MaxThroughput, sailor.Constraints{})
			if err != nil {
				t.Errorf("tenant %s plan: %v", job, err)
				return
			}
			re, err := c.Replan(context.Background(), job, res.Plan, pools[1], sailor.MaxThroughput, sailor.Constraints{})
			if err != nil {
				t.Errorf("tenant %s replan: %v", job, err)
				return
			}
			plans[g] = res.Plan.String() + "\n" + re.Plan.String()
			if err := c.CloseJob(job); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
	if plans[0] == "" || plans[0] != plans[1] {
		t.Errorf("tenants with identical jobs must get identical plans:\n%q\nvs\n%q", plans[0], plans[1])
	}

	c, err := sailor.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Plans != 2 || st.Replans != 2 {
		t.Errorf("stats plans/replans = %d/%d, want 2/2", st.Plans, st.Replans)
	}
	if st.SystemCacheHits != 1 {
		t.Errorf("same-shape tenants should share one profiled system: hits = %d, want 1", st.SystemCacheHits)
	}
	if st.JobsOpen != 0 {
		t.Errorf("JobsOpen = %d, want 0 after CloseJob", st.JobsOpen)
	}
}

// TestServeFleetEndToEnd drives fleet mode over the wire: a daemon started
// with -fleet arbitrates one shared ledger across two tenants — priority
// admission, an availability event preempting the low-priority lease, and
// a warm rebalance once capacity returns.
func TestServeFleetEndToEnd(t *testing.T) {
	var banner strings.Builder
	srv, err := start([]string{"-addr", "127.0.0.1:0", "-workers", "1",
		"-fleet", "us-central1-a:A100-40:16", "-fleet-cap", "8"}, &banner)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !strings.Contains(banner.String(), "fleet mode: 16 GPUs shared, per-job cap 8") {
		t.Errorf("start banner = %q", banner.String())
	}
	c, err := sailor.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.OpenJob("hi", sailor.OPT350M(), []sailor.GPUType{sailor.A100}, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.OpenJob("lo", sailor.OPT350M(), []sailor.GPUType{sailor.A100}, 1); err != nil {
		t.Fatal(err)
	}
	steps, err := c.Rebalance(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 2 || steps[0].Job != "hi" || steps[0].Action != "admit" ||
		steps[1].Job != "lo" || steps[1].Action != "admit" {
		t.Fatalf("admission steps = %+v, want hi then lo admitted", steps)
	}
	st, err := c.FleetStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Leases) != 2 || st.JobCapGPUs != 8 || st.LeasedGPUs > st.CapacityGPUs {
		t.Fatalf("fleet stats = %+v, want two capped leases within capacity", st)
	}
	zone := sailor.GCPZone("us-central1", 'a')
	broken, err := c.FleetEvent(sailor.TraceEvent{Zone: zone, GPU: sailor.A100, Delta: -8})
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 1 || broken[0].Job != "lo" {
		t.Fatalf("broken = %+v, want exactly lo preempted", broken)
	}
	if _, err := c.FleetEvent(sailor.TraceEvent{Zone: zone, GPU: sailor.A100, Delta: 8}); err != nil {
		t.Fatal(err)
	}
	steps, err = c.Rebalance(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 1 || steps[0].Job != "lo" || steps[0].Action != "replan" || steps[0].Result == nil {
		t.Fatalf("recovery steps = %+v, want lo replanned warm", steps)
	}
	for _, job := range []string{"hi", "lo"} {
		if err := c.CloseJob(job); err != nil {
			t.Fatal(err)
		}
	}
	st, err = c.FleetStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Leases) != 0 || st.FreeGPUs != st.CapacityGPUs {
		t.Errorf("stats after closing all jobs = %+v, want empty lease table", st)
	}
}

// TestStartBadFlags: flag and listen errors surface instead of crashing.
func TestStartBadFlags(t *testing.T) {
	var out strings.Builder
	if _, err := start([]string{"-addr", "not-an-address"}, &out); err == nil {
		t.Error("bad listen address must fail")
	}
	if _, err := start([]string{"-nope"}, &out); err == nil {
		t.Error("unknown flag must fail")
	}
	if _, err := start([]string{"-fleet", "not-a-quota"}, &out); err == nil ||
		!strings.Contains(err.Error(), "-fleet") {
		t.Errorf("bad -fleet quota = %v, want parse error", err)
	}
}
