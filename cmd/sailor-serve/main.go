// Command sailor-serve runs the Sailor planner as a long-lived daemon: a
// multi-tenant sailor.Service hosted over the repository's length-prefixed
// JSON rpc framing. Clients open named jobs, then plan, replan, and
// simulate against them; sailor-plan and sailor-replay speak the protocol
// via their -server flag, and any Go program can use sailor.Dial.
//
// Usage:
//
//	sailor-serve                              # listen on 127.0.0.1:7477
//	sailor-serve -addr :7477 -max-concurrent 8 -cache 32
//	sailor-serve -fleet us-central1-a:A100-40:64 -fleet-cap 16   # fleet mode
//	sailor-plan -server 127.0.0.1:7477 -model opt350m -quota zone:A100-40:16
//
// With -fleet the daemon arbitrates one shared capacity ledger across all
// tenants: plans lease GPUs from the fleet's free view (per-job priority,
// optional -fleet-cap fair-share bound), availability events and rebalances
// arrive over the wire, and FleetStats exposes the per-job lease table.
//
// Shutdown is graceful: SIGINT/SIGTERM drains in-flight requests before
// the process exits; queued client calls fail with a typed error.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"repro/sailor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sailor-serve: ")
	srv, err := start(os.Args[1:], os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("draining and shutting down")
	srv.Close()
}

// start parses flags, binds the listener, and begins serving in the
// background; the caller owns shutdown via the returned server's Close.
func start(args []string, out io.Writer) (*sailor.Server, error) {
	fs := flag.NewFlagSet("sailor-serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7477", "listen address (host:port; use :0 for an ephemeral port)")
	workers := fs.Int("workers", runtime.NumCPU(), "planner search parallelism per request (goroutines)")
	maxConcurrent := fs.Int("max-concurrent", runtime.NumCPU(), "planner searches running at once across all tenants")
	cache := fs.Int("cache", 16, "profiled systems kept in the shared LRU")
	seed := fs.Uint64("seed", 1, "profiling seed for every system the daemon builds")
	fleetQuota := fs.String("fleet", "", "fleet mode: shared capacity ledger over this quota (zone:gpu:count,...)")
	fleetCap := fs.Int("fleet-cap", 0, "fleet mode: per-job lease bound in GPUs (0 = unlimited)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	cfg := sailor.ServiceConfig{
		Workers:         *workers,
		MaxConcurrent:   *maxConcurrent,
		SystemCacheSize: *cache,
		Seed:            *seed,
	}
	if *fleetQuota != "" {
		pool, _, err := sailor.ParseQuota(*fleetQuota)
		if err != nil {
			return nil, fmt.Errorf("-fleet: %w", err)
		}
		cfg.Fleet = sailor.NewLedger(pool)
		cfg.Fleet.SetJobCap(*fleetCap)
	}
	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		return nil, err
	}
	srv := sailor.NewServer(lis, sailor.NewService(cfg))
	go srv.Serve()
	fmt.Fprintf(out, "listening on %s (wire schema v%d, workers=%d, max-concurrent=%d, cache=%d)\n",
		srv.Addr(), sailor.WireVersion, *workers, *maxConcurrent, *cache)
	if cfg.Fleet != nil {
		fmt.Fprintf(out, "fleet mode: %d GPUs shared, per-job cap %d\n",
			cfg.Fleet.Capacity().TotalGPUs(), cfg.Fleet.JobCap())
	}
	return srv, nil
}
