// Command sailor-serve runs the Sailor planner as a long-lived daemon: a
// multi-tenant sailor.Service hosted over the repository's length-prefixed
// JSON rpc framing. Clients open named jobs, then plan, replan, and
// simulate against them; sailor-plan and sailor-replay speak the protocol
// via their -server flag, and any Go program can use sailor.Dial.
//
// Usage:
//
//	sailor-serve                              # listen on 127.0.0.1:7477
//	sailor-serve -addr :7477 -max-concurrent 8 -cache 32
//	sailor-serve -fleet us-central1-a:A100-40:64 -fleet-cap 16   # fleet mode
//	sailor-serve -data-dir /var/lib/sailor    # durable: survive kill -9
//	sailor-plan -server 127.0.0.1:7477 -model opt350m -quota zone:A100-40:16
//
// With -fleet the daemon arbitrates one shared capacity ledger across all
// tenants: plans lease GPUs from the fleet's free view (per-job priority,
// optional -fleet-cap fair-share bound), availability events and rebalances
// arrive over the wire, and FleetStats exposes the per-job lease table.
//
// With -data-dir the daemon is durable: every state mutation is journaled
// (fsync policy via -fsync), and on restart the service recovers its open
// jobs, last plans, and fleet ledger — at the exact ledger version — from
// the latest snapshot plus the journal's intact suffix, then continues
// planning bit-identically to an uninterrupted run. When the dir holds a
// previous incarnation's state, that state wins over the -fleet/-fleet-cap
// flags (which describe the first boot). Without -data-dir the daemon is
// pure in-memory, exactly as before.
//
// Overload: at most -max-concurrent planner searches run at once; up to
// -max-queue more wait their turn, and anything beyond that is shed with a
// typed overloaded error the client retry policy backs off on. A request
// whose deadline expires mid-search degrades to the job's warm incumbent
// plan (marked degraded in the response) instead of failing.
//
// Chaos (testing only): -chaos arms a fault-schedule file (see
// internal/chaos) against the daemon's own listener and journal —
// connection cuts, delays, refused accepts, failed appends — and
// -chaos-log writes the deterministic fault log on shutdown. The first
// sticky journal error is logged the moment it happens and surfaces in
// Stats as journal_error.
//
// Shutdown is graceful: SIGINT/SIGTERM drains in-flight requests before
// the process exits; queued client calls fail with a typed error. A durable
// daemon writes a final snapshot on the way out, so a clean restart replays
// zero journal records.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/model"
	"repro/internal/persist"
	"repro/sailor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sailor-serve: ")
	d, err := start(os.Args[1:], os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("draining and shutting down")
	if err := d.Close(); err != nil {
		log.Fatal(err)
	}
}

// daemon is one running sailor-serve: the wire server, the service behind
// it, and (in durable mode) the snapshot+journal store.
type daemon struct {
	srv      *sailor.Server
	svc      *sailor.Service
	store    *persist.Store
	inj      *chaos.Injector
	chaosLog string
}

// Addr returns the bound listen address.
func (d *daemon) Addr() net.Addr { return d.srv.Addr() }

// onOff renders a boolean knob for the startup banner.
func onOff(on bool) string {
	if on {
		return "on"
	}
	return "off"
}

// Close drains in-flight requests (speculative prefetches included), logs
// the session's speculation hit rate, writes the chaos fault log if one
// was requested, then — in durable mode — rotates a final snapshot so the
// next boot replays zero journal records. A sticky journal error from the
// session is surfaced here.
func (d *daemon) Close() error {
	d.srv.Close()
	d.svc.Quiesce()
	if st, err := d.svc.Stats(); err == nil && st.SpecHits+st.SpecMisses > 0 {
		log.Printf("speculation: %d/%d replans served from prefetch (%.1f%% hit rate, %d precomputed)",
			st.SpecHits, st.SpecHits+st.SpecMisses,
			100*float64(st.SpecHits)/float64(st.SpecHits+st.SpecMisses), st.SpecPrecomputed)
	}
	if d.chaosLog != "" {
		doc, err := d.inj.MarshalLog()
		if err == nil {
			err = os.WriteFile(d.chaosLog, doc, 0o644)
		}
		if err != nil {
			log.Printf("chaos log: %v", err)
		}
	}
	if d.store == nil {
		return nil
	}
	if err := d.store.Err(); err != nil {
		d.store.Close()
		return fmt.Errorf("journal: %w", err)
	}
	if err := d.store.Rotate(d.svc.PersistState()); err != nil {
		d.store.Close()
		return fmt.Errorf("final snapshot: %w", err)
	}
	return d.store.Close()
}

// journalHealth interposes on the durable recorder to log the journal's
// first sticky append error the moment it happens — not just at shutdown —
// so silent durability loss is visible in the daemon log. Stats exposes the
// same condition to remote clients via its Err passthrough.
type journalHealth struct {
	*persist.Store
	logged atomic.Bool
}

func (h *journalHealth) check() {
	if err := h.Store.Err(); err != nil && !h.logged.Swap(true) {
		log.Printf("journal unhealthy, writes are no longer durable: %v", err)
	}
}

func (h *journalHealth) RecordOpenJob(job string, m model.Config, gpus []core.GPUType, priority int) {
	h.Store.RecordOpenJob(job, m, gpus, priority)
	h.check()
}

func (h *journalHealth) RecordCloseJob(job string) {
	h.Store.RecordCloseJob(job)
	h.check()
}

func (h *journalHealth) RecordJobPlan(job string, plan core.Plan, obj core.Objective, cons core.Constraints) {
	h.Store.RecordJobPlan(job, plan, obj, cons)
	h.check()
}

func (h *journalHealth) RecordSetFleet(snap fleet.Snapshot) {
	h.Store.RecordSetFleet(snap)
	h.check()
}

func (h *journalHealth) RecordLedgerOp(op fleet.Op) {
	h.Store.RecordLedgerOp(op)
	h.check()
}

// start parses flags, recovers durable state if -data-dir names any, binds
// the listener, and begins serving in the background; the caller owns
// shutdown via the returned daemon's Close.
func start(args []string, out io.Writer) (*daemon, error) {
	fs := flag.NewFlagSet("sailor-serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7477", "listen address (host:port; use :0 for an ephemeral port)")
	workers := fs.Int("workers", runtime.NumCPU(), "planner search parallelism per request (goroutines)")
	maxConcurrent := fs.Int("max-concurrent", runtime.NumCPU(), "planner searches running at once across all tenants")
	cache := fs.Int("cache", 16, "profiled systems kept in the shared LRU")
	seed := fs.Uint64("seed", 1, "profiling seed for every system the daemon builds")
	fleetQuota := fs.String("fleet", "", "fleet mode: shared capacity ledger over this quota (zone:gpu:count,...)")
	fleetCap := fs.Int("fleet-cap", 0, "fleet mode: per-job lease bound in GPUs (0 = unlimited)")
	dataDir := fs.String("data-dir", "", "durable mode: snapshot+journal state here and recover it on restart")
	fsync := fs.String("fsync", "always", `journal flush policy: "always" (every record) or "none"`)
	maxQueue := fs.Int("max-queue", 0, "planner requests queued beyond max-concurrent before shedding with overloaded (0 = 8x max-concurrent, -1 = unbounded)")
	noSpec := fs.Bool("no-speculation", false, "disable the speculative replan prefetch layer (ablation)")
	noInc := fs.Bool("no-incremental", false, "disable the planner's delta-scoped incremental replanning probe (ablation)")
	chaosFile := fs.String("chaos", "", "chaos mode: arm this fault-schedule file against the listener and journal (testing only)")
	chaosLog := fs.String("chaos-log", "", "chaos mode: write the fault log here on shutdown (needs -chaos)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	cfg := sailor.ServiceConfig{
		Workers:            *workers,
		MaxConcurrent:      *maxConcurrent,
		SystemCacheSize:    *cache,
		Seed:               *seed,
		MaxQueued:          *maxQueue,
		WithoutSpeculation: *noSpec,
		WithoutIncremental: *noInc,
	}

	var inj *chaos.Injector
	var sched *chaos.Schedule
	if *chaosFile != "" {
		doc, err := os.ReadFile(*chaosFile)
		if err != nil {
			return nil, fmt.Errorf("-chaos: %w", err)
		}
		if sched, err = chaos.Unmarshal(doc); err != nil {
			return nil, fmt.Errorf("-chaos: %w", err)
		}
		if inj, err = chaos.NewInjector(sched); err != nil {
			return nil, fmt.Errorf("-chaos: %w", err)
		}
	} else if *chaosLog != "" {
		return nil, fmt.Errorf("-chaos-log needs -chaos")
	}
	if *fleetQuota != "" {
		pool, _, err := sailor.ParseQuota(*fleetQuota)
		if err != nil {
			return nil, fmt.Errorf("-fleet: %w", err)
		}
		cfg.Fleet = sailor.NewLedger(pool)
		cfg.Fleet.SetJobCap(*fleetCap)
	}

	var store *persist.Store
	var recovered *persist.Recovered
	if *dataDir != "" {
		pcfg := persist.Config{Fsync: persist.FsyncPolicy(*fsync)}
		if inj != nil {
			pcfg.WrapJournal = inj.WrapJournal
		}
		var err error
		store, recovered, err = persist.Open(*dataDir, pcfg)
		if err != nil {
			return nil, fmt.Errorf("-data-dir: %w", err)
		}
	} else if *fsync != "always" {
		return nil, fmt.Errorf("-fsync needs -data-dir")
	}

	svc := sailor.NewService(cfg)
	if recovered != nil {
		if err := svc.Restore(recovered); err != nil {
			store.Close()
			return nil, fmt.Errorf("-data-dir: %w", err)
		}
	}
	if store != nil {
		// The fresh snapshot captures the (possibly restored) boot state, so
		// the new journal always replays on top of exactly this state.
		if err := store.Rotate(svc.PersistState()); err != nil {
			store.Close()
			return nil, fmt.Errorf("-data-dir: %w", err)
		}
		svc.SetRecorder(&journalHealth{Store: store})
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		if store != nil {
			store.Close()
		}
		return nil, err
	}
	if inj != nil {
		lis = inj.WrapListener(lis)
	}
	srv := sailor.NewServer(lis, svc)
	go srv.Serve()
	fmt.Fprintf(out, "listening on %s (wire schema v%d, workers=%d, max-concurrent=%d, cache=%d)\n",
		srv.Addr(), sailor.WireVersion, *workers, *maxConcurrent, *cache)
	fmt.Fprintf(out, "speculation: %s, incremental replanning: %s\n",
		onOff(!*noSpec), onOff(!*noInc))
	if cfg.Fleet != nil && recovered == nil {
		fmt.Fprintf(out, "fleet mode: %d GPUs shared, per-job cap %d\n",
			cfg.Fleet.Capacity().TotalGPUs(), cfg.Fleet.JobCap())
	}
	if store != nil {
		if recovered != nil {
			fmt.Fprintf(out, "recovered %s: snapshot gen %d + %d journal records (%d jobs, ledger v%d)\n",
				*dataDir, recovered.SnapshotGen, recovered.RecordsReplayed,
				len(recovered.State.Jobs), recovered.LedgerVersion)
			if recovered.TailBytesDropped > 0 {
				log.Printf("dropped %d torn journal tail bytes", recovered.TailBytesDropped)
			}
		} else {
			fmt.Fprintf(out, "durable: journaling to %s (fsync=%s)\n", *dataDir, *fsync)
		}
	}
	if inj != nil {
		fmt.Fprintf(out, "chaos: schedule %q armed (%d faults, seed %d)\n",
			sched.Name, len(sched.Faults), sched.Seed)
	}
	return &daemon{srv: srv, svc: svc, store: store, inj: inj, chaosLog: *chaosLog}, nil
}
