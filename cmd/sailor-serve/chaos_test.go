package main

import (
	"bytes"
	"log"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/sailor"
)

// TestServeChaosJournalFault boots the daemon with the committed smoke
// schedule armed against its own journal: the first append is delayed, the
// second is torn and failed. The sticky error must surface in the daemon
// log the moment it happens, in Stats over the wire, and in Close; the
// fault log lands where -chaos-log points.
func TestServeChaosJournalFault(t *testing.T) {
	var logs bytes.Buffer
	log.SetOutput(&logs)
	defer log.SetOutput(os.Stderr)

	dir := t.TempDir()
	faultLog := filepath.Join(dir, "faultlog.json")
	var banner strings.Builder
	srv, err := start([]string{"-addr", "127.0.0.1:0", "-workers", "1",
		"-data-dir", filepath.Join(dir, "state"), "-fsync", "none",
		"-chaos", "testdata/chaos-smoke.schedule.json", "-chaos-log", faultLog}, &banner)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(banner.String(), `chaos: schedule "smoke-journal" armed (2 faults, seed 7)`) {
		t.Errorf("start banner = %q", banner.String())
	}

	c, err := sailor.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Append 1 (delayed, succeeds): the journal is still healthy.
	if err := c.OpenJob("a", sailor.OPT350M(), []sailor.GPUType{sailor.A100}, 0); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.JournalError != "" {
		t.Fatalf("healthy journal reports error %q", st.JournalError)
	}

	// Append 2 (torn and failed): the error is sticky and observable
	// everywhere — daemon log, remote Stats, and eventually Close.
	if err := c.OpenJob("b", sailor.OPT350M(), []sailor.GPUType{sailor.A100}, 0); err != nil {
		t.Fatal(err)
	}
	if st, err = c.Stats(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(st.JournalError, "smoke-fail") {
		t.Errorf("Stats.JournalError = %q, want the smoke-fail rule", st.JournalError)
	}
	if !strings.Contains(logs.String(), "journal unhealthy") {
		t.Errorf("daemon log = %q, want immediate journal-unhealthy line", logs.String())
	}

	if err := srv.Close(); err == nil || !strings.Contains(err.Error(), "journal") {
		t.Errorf("Close = %v, want the sticky journal error", err)
	}
	doc, err := os.ReadFile(faultLog)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"smoke-delay"`, `"delayed 1ms"`, `"smoke-fail"`, `"fail after 5 bytes"`} {
		if !strings.Contains(string(doc), want) {
			t.Errorf("fault log missing %s:\n%s", want, doc)
		}
	}
}

// TestStartChaosFlags: chaos flag validation fails loudly.
func TestStartChaosFlags(t *testing.T) {
	var out strings.Builder
	if _, err := start([]string{"-chaos-log", "x.json"}, &out); err == nil ||
		!strings.Contains(err.Error(), "-chaos-log needs -chaos") {
		t.Errorf("-chaos-log alone = %v, want needs -chaos", err)
	}
	if _, err := start([]string{"-chaos", "testdata/no-such-file.json"}, &out); err == nil ||
		!strings.Contains(err.Error(), "-chaos") {
		t.Errorf("missing schedule = %v, want -chaos error", err)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"v":1,"kind":"nope"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := start([]string{"-chaos", bad}, &out); err == nil ||
		!strings.Contains(err.Error(), "-chaos") {
		t.Errorf("bad schedule = %v, want -chaos error", err)
	}
}
