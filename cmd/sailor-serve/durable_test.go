package main

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"repro/sailor"
)

// TestServeDurableRestart drives the full durable lifecycle through start()
// exactly as main wires it: a fleet daemon journals its mutations, "crashes"
// (the listener dies but no final snapshot is written — the kill -9 shape),
// and a restart on the same data dir recovers the jobs, leases, and exact
// ledger version, refusing to re-open a recovered job name. A second,
// graceful restart then replays zero records.
func TestServeDurableRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "state")
	boot := func(tail ...string) *daemon {
		t.Helper()
		args := append([]string{"-addr", "127.0.0.1:0", "-workers", "1",
			"-data-dir", dir, "-fsync", "none"}, tail...)
		var banner strings.Builder
		d, err := start(args, &banner)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}

	// Incarnation 1: fresh dir, fleet from flags, two jobs admitted.
	d1 := boot("-fleet", "us-central1-a:A100-40:16", "-fleet-cap", "8")
	c, err := sailor.Dial(d1.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.OpenJob("hi", sailor.OPT350M(), []sailor.GPUType{sailor.A100}, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.OpenJob("lo", sailor.OPT350M(), []sailor.GPUType{sailor.A100}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Rebalance(context.Background()); err != nil {
		t.Fatal(err)
	}
	fs1, err := c.FleetStats()
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	// Crash: stop the listener only. The journal keeps every record; no
	// final snapshot is rotated — the same disk shape kill -9 leaves.
	d1.srv.Close()

	// Incarnation 2: recover. Flags carry no fleet — the recovered state
	// must win and carry the ledger at its exact version.
	d2 := boot()
	c2, err := sailor.Dial(d2.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	st, err := c2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Recovery == nil {
		t.Fatal("Stats.Recovery = nil after a recovery")
	}
	if st.Recovery.JobsRestored != 2 || st.Recovery.RecordsReplayed == 0 {
		t.Errorf("recovery stats = %+v, want 2 jobs from a journal replay", st.Recovery)
	}
	if st.JobsOpen != 2 {
		t.Errorf("JobsOpen = %d, want 2 recovered", st.JobsOpen)
	}
	fs2, err := c2.FleetStats()
	if err != nil {
		t.Fatal(err)
	}
	if fs2.Version != fs1.Version {
		t.Errorf("recovered ledger version = %d, want %d", fs2.Version, fs1.Version)
	}
	if len(fs2.Leases) != len(fs1.Leases) || fs2.JobCapGPUs != fs1.JobCapGPUs {
		t.Errorf("recovered fleet = %+v, want %+v", fs2, fs1)
	}
	// A recovered job is really open: its name is taken.
	if err := c2.OpenJob("hi", sailor.OPT350M(), []sailor.GPUType{sailor.A100}, 2); err == nil ||
		!strings.Contains(err.Error(), "already open") {
		t.Errorf("re-open of recovered job = %v, want already-open", err)
	}
	// The recovered service keeps planning: a new tenant joins the fleet.
	if err := c2.OpenJob("new", sailor.OPT350M(), []sailor.GPUType{sailor.A100}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Rebalance(context.Background()); err != nil {
		t.Fatal(err)
	}
	c2.Close()
	// Graceful shutdown: drains and rotates a final snapshot.
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}

	// Incarnation 3: a clean restart replays zero records.
	d3 := boot()
	defer d3.Close()
	c3, err := sailor.Dial(d3.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	st3, err := c3.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st3.Recovery == nil || st3.Recovery.RecordsReplayed != 0 {
		t.Errorf("clean restart recovery = %+v, want zero records replayed", st3.Recovery)
	}
	if st3.JobsOpen != 3 {
		t.Errorf("JobsOpen after clean restart = %d, want 3", st3.JobsOpen)
	}
}

// TestServeDurableFlagValidation: -fsync without -data-dir and a bad policy
// name fail loudly at start.
func TestServeDurableFlagValidation(t *testing.T) {
	var out strings.Builder
	if _, err := start([]string{"-fsync", "none"}, &out); err == nil ||
		!strings.Contains(err.Error(), "-data-dir") {
		t.Errorf("-fsync without -data-dir = %v", err)
	}
	dir := t.TempDir()
	if _, err := start([]string{"-data-dir", dir, "-fsync", "sometimes"}, &out); err == nil ||
		!strings.Contains(err.Error(), "sometimes") {
		t.Errorf("bad fsync policy = %v", err)
	}
}
