// Command sailor-train runs the elastic training framework over a dynamic
// availability trace (the paper's Figure 2 scenario): the controller plans,
// deploys, trains, and reconfigures kill-free as GPUs come and go.
//
// Usage:
//
//	sailor-train -model opt350m -seed 42
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/sailor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sailor-train: ")

	modelName := flag.String("model", "opt350m", "opt350m or gptneo27b")
	seed := flag.Int64("seed", 42, "availability trace seed")
	flag.Parse()

	var m sailor.Model
	switch strings.ToLower(*modelName) {
	case "opt350m", "opt-350m":
		m = sailor.OPT350M()
	case "gptneo27b", "gpt-neo-2.7b":
		m = sailor.GPTNeo27B()
	default:
		log.Fatalf("unknown model %q", *modelName)
	}

	tr, zoneA, zoneB := sailor.GCPA100Trace(*seed)
	fmt.Printf("replaying 8h A100 availability trace (zones %s, %s)\n", zoneA, zoneB)

	sys, err := sailor.New(m, []sailor.GPUType{sailor.A100})
	if err != nil {
		log.Fatal(err)
	}
	ctrl := sys.NewController()
	rep, err := ctrl.RunElastic(tr, time.Minute)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("iterations completed: %d\n", rep.IterationsDone)
	fmt.Printf("iterations lost to rollbacks: %d\n", rep.LostIterations)
	fmt.Printf("reconfigurations: %d\n", len(rep.Reconfigs))
	for i, t := range rep.Reconfigs {
		plan := "-"
		if i < len(rep.PlansUsed) {
			plan = fmt.Sprintf("%d GPUs", rep.PlansUsed[i].GPUCount())
		}
		fmt.Printf("  #%d: %.2fs total (plan %.2fs, cleanup %.2fs, bcast %.2fs, groups %.2fs) -> %s\n",
			i, t.Total(), t.Planning, t.Cleanup, t.Broadcast, t.GroupInit, plan)
	}
}
