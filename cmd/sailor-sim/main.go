// Command sailor-sim evaluates an explicit parallelization plan with the
// Sailor simulator and the ground-truth engine, printing time, memory,
// cost, and the estimation gap — a one-plan version of the paper's §5.1.
//
// Usage:
//
//	sailor-sim -model opt350m -gpu A100-40 -pp 2 -dp 4 -tp 2 -mbs 2
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/sailor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sailor-sim: ")

	modelName := flag.String("model", "opt350m", "opt350m or gptneo27b")
	gpu := flag.String("gpu", "A100-40", "GPU type for all replicas")
	zoneName := flag.String("zone", "us-central1-a", "zone for all replicas")
	pp := flag.Int("pp", 2, "pipeline-parallel degree")
	dp := flag.Int("dp", 2, "data-parallel degree")
	tp := flag.Int("tp", 1, "tensor-parallel degree")
	mbs := flag.Int("mbs", 2, "microbatch size")
	flag.Parse()

	var m sailor.Model
	switch strings.ToLower(*modelName) {
	case "opt350m", "opt-350m":
		m = sailor.OPT350M()
	case "gptneo27b", "gpt-neo-2.7b":
		m = sailor.GPTNeo27B()
	default:
		log.Fatalf("unknown model %q", *modelName)
	}

	region := *zoneName
	if i := strings.LastIndex(region, "-"); i > 0 {
		region = region[:i]
	}
	z := sailor.Zone{Region: region, Name: *zoneName}
	g := sailor.GPUType(*gpu)

	plan := sailor.Plan{MicroBatchSize: *mbs}
	per := m.Layers / *pp
	rem := m.Layers - per**pp
	first := 0
	for i := 0; i < *pp; i++ {
		n := per
		if i < rem {
			n++
		}
		st := sailor.StagePlan{FirstLayer: first, NumLayers: n}
		for k := 0; k < *dp; k++ {
			st.Replicas = append(st.Replicas, sailor.StageReplica{GPU: g, TP: *tp, Zone: z})
		}
		plan.Stages = append(plan.Stages, st)
		first += n
	}

	sys, err := sailor.New(m, []sailor.GPUType{g})
	if err != nil {
		log.Fatal(err)
	}
	est, err := sys.Simulate(plan)
	if err != nil {
		log.Fatal(err)
	}
	real, err := sys.Measure(plan)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("plan:       %s\n", plan)
	fmt.Printf("simulated:  %.3f s/iter, %.1f GiB peak, $%.3f/iter\n",
		est.IterTime, float64(est.PeakMemory)/(1<<30), est.Cost())
	fmt.Printf("measured:   %.3f s/iter, %.1f GiB peak, $%.3f/iter\n",
		real.IterTime, float64(real.PeakMemory)/(1<<30), real.Cost())
	gap := 100 * (est.IterTime - real.IterTime) / real.IterTime
	fmt.Printf("time gap:   %+.1f%%\n", gap)
	if !real.FitsMemory {
		fmt.Println("verdict:    OOM on deployment")
	} else {
		fmt.Println("verdict:    deployable")
	}
}
