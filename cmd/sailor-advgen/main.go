// Command sailor-advgen is the adversarial trace generator: a seeded
// random search over availability traces that maximizes a replay-badness
// objective (downtime, lease churn, forced replans, or warm-cache miss
// rate) against a real in-process fleet. The worst traces it finds are
// written as canonical trace files — ready to commit as golden regression
// scenarios and replay through `sailor-replay -trace <file> -fleet`.
//
// The search is deterministic: the same (flags, seed, budget) always
// prints the same scoreboard and writes byte-identical trace files, at any
// -workers setting. That is what lets CI smoke-run the generator and
// compare the top-1 byte-for-byte.
//
// Usage:
//
//	sailor-advgen -objective downtime -budget 64 -seed 7
//	sailor-advgen -objective churn -budget 128 -top 3 -out testdata/
//	sailor-advgen -objectives
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/advgen"
	"repro/internal/trace"
	"repro/sailor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sailor-advgen: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sailor-advgen", flag.ContinueOnError)
	listObjectives := fs.Bool("objectives", false, "list search objectives and exit")
	objective := fs.String("objective", string(advgen.Downtime), "replay-badness objective to maximize (see -objectives)")
	modelName := fs.String("model", "OPT-350M", "model every fleet job trains (see internal/model)")
	jobs := fs.Int("jobs", 3, "number of contending fleet jobs")
	horizon := fs.Duration("horizon", 2*time.Hour, "candidate trace horizon")
	maxGPUs := fs.Int("max-gpus", 8, "bound on any event delta and initial per-cell grant")
	maxEvents := fs.Int("max-events", 24, "bound on a candidate's availability-event count")
	budget := fs.Int("budget", 32, "candidate evaluations (fleet replays)")
	topK := fs.Int("top", 2, "worst cases to keep and write")
	seed := fs.Int64("seed", 42, "search seed")
	workers := fs.Int("workers", runtime.NumCPU(), "planner search parallelism (results identical at any setting)")
	caps := fs.Bool("caps", true, "allow demand-autoscaling (cap event) mutations")
	outDir := fs.String("out", "", "directory to write the top-K trace files into (empty = scoreboard only)")
	verbose := fs.Bool("v", false, "log every elite-pool improvement")
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *listObjectives {
		for _, o := range advgen.Objectives() {
			fmt.Fprintln(out, o)
		}
		return nil
	}
	obj, err := advgen.ParseObjective(*objective)
	if err != nil {
		return err
	}
	model, err := sailor.ModelByName(*modelName)
	if err != nil {
		return err
	}

	cfg := advgen.Config{
		Model:        model,
		Jobs:         *jobs,
		Horizon:      *horizon,
		MaxGPUs:      *maxGPUs,
		MaxEvents:    *maxEvents,
		Objective:    obj,
		Budget:       *budget,
		TopK:         *topK,
		Seed:         *seed,
		Workers:      *workers,
		CapMutations: *caps,
	}
	if *verbose {
		cfg.Log = func(format string, args ...any) {
			fmt.Fprintf(out, format+"\n", args...)
		}
	}

	elites, err := advgen.Search(cfg)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "objective=%s budget=%d seed=%d jobs=%d horizon=%s\n",
		obj, cfg.Budget, cfg.Seed, cfg.Jobs, cfg.Horizon)
	for rank, e := range elites {
		fmt.Fprintf(out, "#%d %s=%.3f  downtime=%d churn=%d replans=%d warm-miss=%d/%d  events=%d caps=%d\n",
			rank+1, obj, e.Score.Value(obj),
			e.Score.Downtime, e.Score.Churn, e.Score.Replans,
			e.Score.WarmMisses, e.Score.Searches,
			len(e.Trace.Events), len(e.Trace.CapEvents))
	}

	if *outDir == "" {
		return nil
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	for rank, e := range elites {
		name := fmt.Sprintf("adv-%s-%d", obj, rank+1)
		doc, err := trace.Save(&trace.File{
			Name: name,
			Description: fmt.Sprintf(
				"adversarial worst case #%d for objective %q (advgen seed %d, budget %d)",
				rank+1, obj, cfg.Seed, cfg.Budget),
			Trace: e.Trace,
		})
		if err != nil {
			return err
		}
		path := filepath.Join(*outDir, name+".trace.json")
		if err := os.WriteFile(path, doc, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", path)
	}
	return nil
}
