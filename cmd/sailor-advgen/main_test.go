package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

// TestRunDeterministicScoreboard: same flags, same seed → identical output,
// at any worker count. This is the CI smoke contract.
func TestRunDeterministicScoreboard(t *testing.T) {
	args := []string{"-budget", "6", "-seed", "7", "-jobs", "2",
		"-horizon", "1h", "-max-gpus", "6", "-max-events", "10",
		"-objective", "churn"}
	var a, b, w8 bytes.Buffer
	if err := run(append(args, "-workers", "1"), &a); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-workers", "1"), &b); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-workers", "8"), &w8); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("identical runs diverge:\n%s\nvs\n%s", a.String(), b.String())
	}
	if a.String() != w8.String() {
		t.Errorf("workers=1 and workers=8 diverge:\n%s\nvs\n%s", a.String(), w8.String())
	}
	if !strings.Contains(a.String(), "#1 churn=") {
		t.Errorf("scoreboard missing top-1 line:\n%s", a.String())
	}
}

// TestRunWritesTraceFiles: -out writes top-K canonical trace files that
// load back through the versioned codec.
func TestRunWritesTraceFiles(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	err := run([]string{"-budget", "6", "-seed", "7", "-jobs", "2",
		"-horizon", "1h", "-max-gpus", "6", "-max-events", "10",
		"-objective", "downtime", "-top", "2", "-workers", "1",
		"-out", dir}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"adv-downtime-1", "adv-downtime-2"} {
		path := filepath.Join(dir, name+".trace.json")
		doc, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing written trace: %v", err)
		}
		f, err := trace.Load(doc)
		if err != nil {
			t.Fatalf("%s does not load: %v", path, err)
		}
		if f.Name != name {
			t.Errorf("%s: name = %q, want %q", path, f.Name, name)
		}
		if !strings.Contains(buf.String(), path) {
			t.Errorf("scoreboard does not mention %s:\n%s", path, buf.String())
		}
	}
}

// TestRunObjectivesAndValidation covers -objectives and flag rejection.
func TestRunObjectivesAndValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-objectives"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"downtime", "churn", "replans", "warm-miss"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("-objectives missing %q:\n%s", want, buf.String())
		}
	}
	if err := run([]string{"-objective", "chaos"}, &buf); err == nil {
		t.Error("unknown objective accepted")
	}
	if err := run([]string{"-model", "no-such-model"}, &buf); err == nil {
		t.Error("unknown model accepted")
	}
}
