package main

import (
	"strings"
	"testing"

	"repro/sailor"
)

func TestModelByName(t *testing.T) {
	for _, alias := range []string{"OPT-350M", "opt350m", "opt-350m"} {
		m, err := sailor.ModelByName(alias)
		if err != nil || m.Name != "OPT-350M" {
			t.Errorf("ModelByName(%q) = %v, %v", alias, m.Name, err)
		}
	}
	if _, err := sailor.ModelByName("gpt9000"); err == nil {
		t.Error("unknown model should error")
	}
}

func TestPrintScenariosListsRegistry(t *testing.T) {
	var b strings.Builder
	printScenarios(&b)
	out := b.String()
	for _, want := range []string{
		"gcp-a100", "preemption-storm", "diurnal-wave", "zone-outage",
		"hetero-arrivals", "geo-shift",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scenario listing missing %q:\n%s", want, out)
		}
	}
}

func TestWriteLedger(t *testing.T) {
	rep := sailor.Report{
		IterationsDone:   120,
		VirtualSeconds:   7200,
		LostIterations:   4,
		CheckpointsTaken: 23,
		PlanningSeconds:  0.25,
		PlanCacheHits:    57,
		Reconfigs: []sailor.PhaseTimings{
			{Planning: 0.1, Broadcast: 1.0, PlanExplored: 300},
			{Planning: 0.15, Broadcast: 1.1, PlanCacheHits: 57, PlanExplored: 40},
		},
		PlansUsed: make([]sailor.Plan, 2),
	}
	var b strings.Builder
	writeLedger(&b, rep)
	out := b.String()
	for _, want := range []string{"120 done", "4 lost", "57 warm-cache hits", "2,"} {
		if !strings.Contains(out, want) {
			t.Errorf("ledger missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines < 7 {
		t.Errorf("ledger suspiciously short (%d lines):\n%s", lines, out)
	}
}
