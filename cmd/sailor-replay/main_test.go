package main

import (
	"bytes"
	"encoding/json"
	"net"
	"strings"
	"sync"
	"testing"

	"repro/internal/testutil"
	"repro/sailor"
)

// zeroReplayClocks drops every wall-clock field of the -json ledger: the
// report's planning seconds (total and per-reconfig) locally, and the
// steps' search times in server mode.
func zeroReplayClocks(m map[string]any) {
	if rep, ok := m["report"].(map[string]any); ok {
		rep["planning_seconds"] = 0.0
		// The virtual clock advances by the measured (wall-clock) planning
		// time of each reconfiguration, so it is volatile too.
		rep["virtual_seconds"] = 0.0
		if rcs, ok := rep["reconfigs"].([]any); ok {
			for _, rc := range rcs {
				rc.(map[string]any)["planning"] = 0.0
			}
		}
	}
	if steps, ok := m["steps"].([]any); ok {
		for _, s := range steps {
			s.(map[string]any)["search_time_ns"] = 0.0
		}
	}
	delete(m, "server")
}

// TestJSONGolden pins the -json ledger shape of an in-process replay.
func TestJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-scenario", "preemption-storm", "-seed", "1",
		"-workers", "1", "-json"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	testutil.CheckGolden(t, "replay.golden.json", testutil.NormalizeJSON(t, buf.Bytes(), zeroReplayClocks))
}

// TestServerModeLedger: two tenants replay a scenario step sequence
// concurrently through one daemon (plan + replans over the wire), and both
// get the deterministic ledger; -json and text modes agree on the steps.
func TestServerModeLedger(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := sailor.NewServer(lis, sailor.NewService(sailor.ServiceConfig{Workers: 2, MaxConcurrent: 4}))
	go srv.Serve()
	defer srv.Close()
	addr := lis.Addr().String()

	args := func(job string, json bool) []string {
		a := []string{"-scenario", "preemption-storm", "-seed", "1",
			"-server", addr, "-job", job}
		if json {
			a = append(a, "-json")
		}
		return a
	}
	var wg sync.WaitGroup
	outs := make([]bytes.Buffer, 2)
	errs := make([]error, 2)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			errs[g] = run(args([]string{"tenant-a", "tenant-b"}[g], true), &outs[g])
		}(g)
	}
	wg.Wait()
	for g := 0; g < 2; g++ {
		if errs[g] != nil {
			t.Fatalf("tenant %d: %v", g, errs[g])
		}
	}
	a := testutil.NormalizeJSON(t, outs[0].Bytes(), zeroReplayClocks)
	b := testutil.NormalizeJSON(t, outs[1].Bytes(), zeroReplayClocks)
	if !bytes.Equal(a, b) {
		t.Errorf("concurrent tenants got different ledgers:\n%s\nvs\n%s", a, b)
	}
	var doc map[string]any
	if err := json.Unmarshal(outs[0].Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	steps, ok := doc["steps"].([]any)
	if !ok || len(steps) < 2 {
		t.Fatalf("server-mode ledger has %d steps, want >=2 (plan + replans)", len(steps))
	}

	var text bytes.Buffer
	if err := run(args("tenant-text", false), &text); err != nil {
		t.Fatal(err)
	}
	out := text.String()
	for _, want := range []string{"replan ledger (via server):", "explored", "PP="} {
		if !strings.Contains(out, want) {
			t.Errorf("text ledger missing %q:\n%s", want, out)
		}
	}
}

func TestModelByName(t *testing.T) {
	for _, alias := range []string{"OPT-350M", "opt350m", "opt-350m"} {
		m, err := sailor.ModelByName(alias)
		if err != nil || m.Name != "OPT-350M" {
			t.Errorf("ModelByName(%q) = %v, %v", alias, m.Name, err)
		}
	}
	if _, err := sailor.ModelByName("gpt9000"); err == nil {
		t.Error("unknown model should error")
	}
}

func TestPrintScenariosListsRegistry(t *testing.T) {
	var b strings.Builder
	printScenarios(&b)
	out := b.String()
	for _, want := range []string{
		"gcp-a100", "preemption-storm", "diurnal-wave", "zone-outage",
		"hetero-arrivals", "geo-shift",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scenario listing missing %q:\n%s", want, out)
		}
	}
}

func TestWriteLedger(t *testing.T) {
	rep := sailor.Report{
		IterationsDone:   120,
		VirtualSeconds:   7200,
		LostIterations:   4,
		CheckpointsTaken: 23,
		PlanningSeconds:  0.25,
		PlanCacheHits:    57,
		Reconfigs: []sailor.PhaseTimings{
			{Planning: 0.1, Broadcast: 1.0, PlanExplored: 300},
			{Planning: 0.15, Broadcast: 1.1, PlanCacheHits: 57, PlanExplored: 40},
		},
		PlansUsed: make([]sailor.Plan, 2),
	}
	var b strings.Builder
	writeLedger(&b, rep)
	out := b.String()
	for _, want := range []string{"120 done", "4 lost", "57 warm-cache hits", "2,"} {
		if !strings.Contains(out, want) {
			t.Errorf("ledger missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines < 7 {
		t.Errorf("ledger suspiciously short (%d lines):\n%s", lines, out)
	}
}
