// Command sailor-replay runs a named availability scenario and prints the
// reconfiguration ledger: every replan's plan, downtime breakdown, and
// warm-start cache utilisation.
//
// In-process (default) it replays the scenario through the elastic
// controller. With -server it drives a sailor-serve daemon instead: every
// distinct availability snapshot becomes a plan/replan request, exercising
// the §5.5 control-plane loop over the wire. -json emits the versioned
// wire-schema ledger in either mode.
//
// Usage:
//
//	sailor-replay -list
//	sailor-replay -scenario preemption-storm
//	sailor-replay -scenario zone-outage -seed 7 -model gptneo27b -base 16
//	sailor-replay -scenario preemption-storm -server 127.0.0.1:7477 -json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/wire"
	"repro/sailor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sailor-replay: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// replayOutput is the -json ledger: versioned, built on the wire codec.
// Local (controller) replays carry Report; -server replays carry Steps,
// one planner result per distinct availability snapshot.
type replayOutput struct {
	V              int               `json:"v"`
	Scenario       string            `json:"scenario"`
	Description    string            `json:"description"`
	Model          string            `json:"model"`
	Seed           int64             `json:"seed"`
	HorizonSeconds float64           `json:"horizon_seconds"`
	Events         int               `json:"events"`
	Workers        int               `json:"workers"`
	Server         string            `json:"server,omitempty"`
	Report         *wire.Report      `json:"report,omitempty"`
	Steps          []wire.PlanResult `json:"steps,omitempty"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sailor-replay", flag.ContinueOnError)
	list := fs.Bool("list", false, "list registered scenarios and exit")
	name := fs.String("scenario", "", "scenario to replay (see -list)")
	seed := fs.Int64("seed", 42, "scenario seed")
	modelName := fs.String("model", "OPT-350M", "model from the zoo (see internal/model)")
	workers := fs.Int("workers", runtime.NumCPU(), "planner search parallelism (goroutines; in-process mode)")
	horizon := fs.Duration("horizon", 0, "override the scenario horizon (0 = scenario default)")
	base := fs.Int("base", 0, "override the scenario base GPU count (0 = scenario default)")
	server := fs.String("server", "", "drive a sailor-serve daemon at host:port instead of the in-process controller")
	job := fs.String("job", "sailor-replay", "job name to open on the service (with -server)")
	jsonOut := fs.Bool("json", false, "emit the versioned wire-schema JSON ledger instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		printScenarios(out)
		return nil
	}
	sc, ok := sailor.ScenarioByName(*name)
	if !ok {
		var b strings.Builder
		printScenarios(&b)
		if *name == "" {
			return fmt.Errorf("missing -scenario; registered scenarios:\n%s", b.String())
		}
		return fmt.Errorf("unknown scenario %q; registered scenarios:\n%s", *name, b.String())
	}
	m, err := sailor.ModelByName(*modelName)
	if err != nil {
		return err
	}
	if *workers <= 0 {
		*workers = runtime.NumCPU()
	}
	tr := sc.TraceWith(*seed, sailor.ScenarioOpts{Horizon: *horizon, Base: *base})
	doc := replayOutput{
		V:              sailor.WireVersion,
		Scenario:       sc.Name,
		Description:    sc.Description,
		Model:          m.Name,
		Seed:           *seed,
		HorizonSeconds: tr.Horizon.Seconds(),
		Events:         len(tr.Events),
		Workers:        *workers,
		Server:         *server,
	}

	if *server != "" {
		steps, err := replayViaServer(*server, *job, m, sc, tr)
		if err != nil {
			return err
		}
		if *jsonOut {
			return writeJSON(out, docWithSteps(doc, steps))
		}
		fmt.Fprintf(out, "scenario:  %s — %s\n", sc.Name, sc.Description)
		fmt.Fprintf(out, "model:     %s   seed: %d   horizon: %s   events: %d   server: %s\n",
			m.Name, *seed, tr.Horizon, len(tr.Events), *server)
		fmt.Fprintln(out)
		writeStepLedger(out, steps)
		return nil
	}

	sys, err := sailor.New(m, sc.GPUs, sailor.WithWorkers(*workers))
	if err != nil {
		return err
	}
	ctrl := sys.NewController()
	rep, err := ctrl.RunElastic(tr, time.Minute)
	if err != nil {
		return err
	}
	if *jsonOut {
		r := wire.FromReport(rep)
		doc.Report = &r
		return writeJSON(out, doc)
	}
	fmt.Fprintf(out, "scenario:  %s — %s\n", sc.Name, sc.Description)
	fmt.Fprintf(out, "model:     %s   seed: %d   horizon: %s   events: %d   workers: %d\n",
		m.Name, *seed, tr.Horizon, len(tr.Events), *workers)
	fmt.Fprintln(out)
	writeLedger(out, rep)
	return nil
}

func docWithSteps(doc replayOutput, steps []sailor.PlanResult) replayOutput {
	doc.Steps = make([]wire.PlanResult, len(steps))
	for i, s := range steps {
		doc.Steps[i] = wire.FromResult(s)
	}
	return doc
}

func writeJSON(out io.Writer, doc replayOutput) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// replayViaServer turns the trace's distinct availability snapshots into
// the §5.5 control-plane request sequence: plan the first, then replan
// each successive snapshot from the previous response's plan.
func replayViaServer(addr, job string, m sailor.Model, sc sailor.Scenario, tr *sailor.Trace) ([]sailor.PlanResult, error) {
	pools := tr.DistinctPools()
	if len(pools) == 0 {
		return nil, fmt.Errorf("scenario produces no non-empty pools")
	}
	c, err := sailor.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if err := c.OpenJob(job, m, sc.GPUs); err != nil {
		return nil, err
	}
	defer c.CloseJob(job)
	steps := make([]sailor.PlanResult, 0, len(pools))
	var prev sailor.Plan
	for i, pool := range pools {
		var res sailor.PlanResult
		if i == 0 {
			res, err = c.Plan(context.Background(), job, pool, sailor.MaxThroughput, sailor.Constraints{})
		} else {
			res, err = c.Replan(context.Background(), job, prev, pool, sailor.MaxThroughput, sailor.Constraints{})
		}
		if err != nil {
			return nil, fmt.Errorf("snapshot %d: %w", i, err)
		}
		steps = append(steps, res)
		prev = res.Plan
	}
	return steps, nil
}

func printScenarios(w io.Writer) {
	for _, s := range sailor.Scenarios() {
		gpus := make([]string, len(s.GPUs))
		for i, g := range s.GPUs {
			gpus[i] = string(g)
		}
		fmt.Fprintf(w, "  %-18s %s (GPUs: %s, horizon %s)\n",
			s.Name, s.Description, strings.Join(gpus, "+"), s.Defaults.Horizon)
	}
}

// writeStepLedger renders the per-snapshot planner results of a -server
// replay.
func writeStepLedger(w io.Writer, steps []sailor.PlanResult) {
	fmt.Fprintln(w, "replan ledger (via server):")
	fmt.Fprintf(w, "  %3s  %4s  %5s  %8s  %s\n", "#", "gpus", "hits", "explored", "plan")
	for i, s := range steps {
		fmt.Fprintf(w, "  %3d  %4d  %5d  %8d  %s\n",
			i, s.Plan.GPUCount(), s.CacheHits, s.Explored, s.Plan)
	}
}

// writeLedger renders the reconfiguration ledger and run summary.
func writeLedger(w io.Writer, rep sailor.Report) {
	fmt.Fprintln(w, "reconfiguration ledger:")
	fmt.Fprintf(w, "  %3s  %4s  %9s  %9s  %5s  %8s  %s\n",
		"#", "gpus", "downtime", "planning", "hits", "explored", "plan")
	for i, t := range rep.Reconfigs {
		gpus, plan := 0, ""
		if i < len(rep.PlansUsed) {
			gpus = rep.PlansUsed[i].GPUCount()
			plan = rep.PlansUsed[i].String()
		}
		fmt.Fprintf(w, "  %3d  %4d  %8.2fs  %8.3fs  %5d  %8d  %s\n",
			i, gpus, t.Total(), t.Planning, t.PlanCacheHits, t.PlanExplored, plan)
	}
	fmt.Fprintln(w, "summary:")
	fmt.Fprintf(w, "  iterations:       %d done, %d lost to rollbacks, %d checkpoints\n",
		rep.IterationsDone, rep.LostIterations, rep.CheckpointsTaken)
	fmt.Fprintf(w, "  reconfigurations: %d, total downtime %.1fs over %.1f virtual hours\n",
		len(rep.Reconfigs), rep.TotalDowntimeSeconds(), rep.VirtualSeconds/3600)
	fmt.Fprintf(w, "  planning:         %.3fs wall-clock total, %d warm-cache hits\n",
		rep.PlanningSeconds, rep.PlanCacheHits)
}
