// Command sailor-replay runs a named availability scenario and prints the
// reconfiguration ledger: every replan's plan, downtime breakdown, and
// warm-start cache utilisation.
//
// In-process (default) it replays the scenario through the elastic
// controller. With -server it drives a sailor-serve daemon instead: every
// distinct availability snapshot becomes a plan/replan request, exercising
// the §5.5 control-plane loop over the wire. With -fleet it drives N
// contending jobs through one shared cluster-state ledger: every event
// step mutates the fleet, preempts leases in deterministic admission
// order, and rebalances the broken jobs warm, printing the per-job
// reconfiguration ledger. -json emits the versioned wire-schema ledger in
// every mode.
//
// With -trace it replays an external availability trace instead of a named
// scenario: a versioned JSON trace document (or a .csv log, imported and
// canonicalized), validated at the boundary, driving the same in-process
// controller or fleet paths. Trace cap events (demand autoscaling) are
// applied to the fleet ledger before the availability events of the same
// instant, evicting oversized leases in deterministic admission order.
//
// Usage:
//
//	sailor-replay -list
//	sailor-replay -scenario preemption-storm
//	sailor-replay -scenario zone-outage -seed 7 -model gptneo27b -base 16
//	sailor-replay -scenario preemption-storm -server 127.0.0.1:7477 -json
//	sailor-replay -scenario preemption-storm -fleet -jobs 3
//	sailor-replay -trace spot-log.trace.json -fleet -jobs 3
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/wire"
	"repro/sailor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sailor-replay: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// replayOutput is the -json ledger: versioned, built on the wire codec.
// Local (controller) replays carry Report; -server replays carry Steps,
// one planner result per distinct availability snapshot; -fleet replays
// carry Fleet, the per-job reconfiguration ledger.
type replayOutput struct {
	V              int               `json:"v"`
	Scenario       string            `json:"scenario"`
	TraceFile      string            `json:"trace_file,omitempty"`
	Description    string            `json:"description"`
	Model          string            `json:"model"`
	Seed           int64             `json:"seed"`
	HorizonSeconds float64           `json:"horizon_seconds"`
	Events         int               `json:"events"`
	Workers        int               `json:"workers"`
	Server         string            `json:"server,omitempty"`
	Report         *wire.Report      `json:"report,omitempty"`
	Steps          []wire.PlanResult `json:"steps,omitempty"`
	Fleet          *fleetDoc         `json:"fleet,omitempty"`
}

// fleetDoc is the -fleet -json ledger: one entry per event timestamp.
type fleetDoc struct {
	Jobs       int         `json:"jobs"`
	JobCapGPUs int         `json:"job_cap_gpus"`
	Steps      []fleetStep `json:"steps"`
}

// fleetStep is one event timestamp of a fleet replay: the availability
// events applied, the leases they broke, the rebalance outcomes, and the
// resulting lease table.
type fleetStep struct {
	AtSeconds    float64              `json:"at_seconds"`
	Events       int                  `json:"events"`
	CapGPUs      *int                 `json:"cap_gpus,omitempty"`
	CapacityGPUs int                  `json:"capacity_gpus"`
	FreeGPUs     int                  `json:"free_gpus"`
	Broken       []string             `json:"broken,omitempty"`
	SpecHits     int                  `json:"spec_hits,omitempty"`
	Rebalance    []wire.RebalanceStep `json:"rebalance"`
	Leases       []leaseRow           `json:"leases"`
}

// leaseRow is the compact per-job lease table entry of the fleet ledger
// output (the full plans already appear in the rebalance results).
type leaseRow struct {
	Job      string `json:"job"`
	Priority int    `json:"priority"`
	GPUs     int    `json:"gpus"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sailor-replay", flag.ContinueOnError)
	list := fs.Bool("list", false, "list registered scenarios and exit")
	name := fs.String("scenario", "", "scenario to replay (see -list)")
	traceFile := fs.String("trace", "", "replay an external trace file (versioned JSON document, or .csv import) instead of a -scenario")
	seed := fs.Int64("seed", 42, "scenario seed")
	modelName := fs.String("model", "OPT-350M", "model from the zoo (see internal/model)")
	workers := fs.Int("workers", runtime.NumCPU(), "planner search parallelism (goroutines; in-process mode)")
	horizon := fs.Duration("horizon", 0, "override the scenario horizon (0 = scenario default)")
	base := fs.Int("base", 0, "override the scenario base GPU count (0 = scenario default)")
	server := fs.String("server", "", "drive a sailor-serve daemon at host:port instead of the in-process controller")
	job := fs.String("job", "sailor-replay", "job name to open on the service (with -server)")
	fleetMode := fs.Bool("fleet", false, "drive N contending jobs through one shared cluster-state ledger")
	jobs := fs.Int("jobs", 2, "number of contending jobs (with -fleet)")
	fleetCap := fs.Int("fleet-cap", 0, "per-job lease bound in GPUs (with -fleet; 0 = auto: half the scenario base, negative = unlimited)")
	jsonOut := fs.Bool("json", false, "emit the versioned wire-schema JSON ledger instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		printScenarios(out)
		return nil
	}
	// The replay source: a registered scenario, or an external trace file.
	var (
		tr      *sailor.Trace
		srcName string
		srcDesc string
		gpus    []sailor.GPUType
		defBase int
	)
	if *traceFile != "" {
		if *name != "" {
			return fmt.Errorf("-trace and -scenario are mutually exclusive")
		}
		if *server != "" {
			return fmt.Errorf("-trace replays in-process; drop -server")
		}
		if *horizon != 0 || *base != 0 {
			return fmt.Errorf("-horizon and -base scale scenario families; an external trace fixes both")
		}
		tf, err := loadTraceFile(*traceFile)
		if err != nil {
			return err
		}
		tr, srcName, srcDesc = tf.Trace, tf.Name, tf.Description
		gpus = tr.GPUTypes()
		defBase = tr.PeakGPUs()
	} else {
		sc, ok := sailor.ScenarioByName(*name)
		if !ok {
			var b strings.Builder
			printScenarios(&b)
			if *name == "" {
				return fmt.Errorf("missing -scenario or -trace; registered scenarios:\n%s", b.String())
			}
			return fmt.Errorf("unknown scenario %q; registered scenarios:\n%s", *name, b.String())
		}
		tr = sc.TraceWith(*seed, sailor.ScenarioOpts{Horizon: *horizon, Base: *base})
		srcName, srcDesc, gpus = sc.Name, sc.Description, sc.GPUs
		defBase = *base
		if defBase <= 0 {
			defBase = sc.Defaults.Base
		}
	}
	m, err := sailor.ModelByName(*modelName)
	if err != nil {
		return err
	}
	if *workers <= 0 {
		*workers = runtime.NumCPU()
	}
	doc := replayOutput{
		V:              sailor.WireVersion,
		Scenario:       srcName,
		TraceFile:      *traceFile,
		Description:    srcDesc,
		Model:          m.Name,
		Seed:           *seed,
		HorizonSeconds: tr.Horizon.Seconds(),
		Events:         len(tr.Events),
		Workers:        *workers,
		Server:         *server,
	}

	if *fleetMode {
		if *server != "" {
			return fmt.Errorf("-fleet runs in-process; drop -server")
		}
		if *jobs < 1 {
			return fmt.Errorf("-jobs must be >= 1")
		}
		cap := *fleetCap
		if cap == 0 {
			// Auto cap: half the scenario base, or half the trace's peak
			// availability for an external trace.
			cap = defBase / 2
			if cap < 1 {
				cap = 1
			}
		} else if cap < 0 {
			cap = 0
		}
		fd, err := replayFleet(m, gpus, tr, *jobs, cap, *workers)
		if err != nil {
			return err
		}
		if *jsonOut {
			doc.Fleet = fd
			return writeJSON(out, doc)
		}
		fmt.Fprintf(out, "scenario:  %s — %s\n", srcName, srcDesc)
		fmt.Fprintf(out, "model:     %s   seed: %d   horizon: %s   events: %d   workers: %d\n",
			m.Name, *seed, tr.Horizon, len(tr.Events), *workers)
		fmt.Fprintf(out, "fleet:     %d jobs, per-job cap %d GPUs\n", fd.Jobs, fd.JobCapGPUs)
		fmt.Fprintln(out)
		writeFleetLedger(out, fd)
		return nil
	}

	if *server != "" {
		steps, err := replayViaServer(*server, *job, m, gpus, tr)
		if err != nil {
			return err
		}
		if *jsonOut {
			return writeJSON(out, docWithSteps(doc, steps))
		}
		fmt.Fprintf(out, "scenario:  %s — %s\n", srcName, srcDesc)
		fmt.Fprintf(out, "model:     %s   seed: %d   horizon: %s   events: %d   server: %s\n",
			m.Name, *seed, tr.Horizon, len(tr.Events), *server)
		fmt.Fprintln(out)
		writeStepLedger(out, steps)
		return nil
	}

	sys, err := sailor.New(m, gpus, sailor.WithWorkers(*workers))
	if err != nil {
		return err
	}
	ctrl := sys.NewController()
	rep, err := ctrl.RunElastic(tr, time.Minute)
	if err != nil {
		return err
	}
	if *jsonOut {
		r := wire.FromReport(rep)
		doc.Report = &r
		return writeJSON(out, doc)
	}
	fmt.Fprintf(out, "scenario:  %s — %s\n", srcName, srcDesc)
	fmt.Fprintf(out, "model:     %s   seed: %d   horizon: %s   events: %d   workers: %d\n",
		m.Name, *seed, tr.Horizon, len(tr.Events), *workers)
	fmt.Fprintln(out)
	writeLedger(out, rep)
	return nil
}

func docWithSteps(doc replayOutput, steps []sailor.PlanResult) replayOutput {
	doc.Steps = make([]wire.PlanResult, len(steps))
	for i, s := range steps {
		doc.Steps[i] = wire.FromResult(s)
	}
	return doc
}

func writeJSON(out io.Writer, doc replayOutput) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// loadTraceFile reads an external trace from disk: a versioned JSON trace
// document, or a CSV availability log (by .csv extension) imported and
// canonicalized to the same shape.
func loadTraceFile(path string) (*sailor.TraceFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(strings.ToLower(path), ".csv") {
		return sailor.LoadTraceCSV(data)
	}
	return sailor.LoadTrace(data)
}

// replayViaServer turns the trace's distinct availability snapshots into
// the §5.5 control-plane request sequence: plan the first, then replan
// each successive snapshot from the previous response's plan.
func replayViaServer(addr, job string, m sailor.Model, gpus []sailor.GPUType, tr *sailor.Trace) ([]sailor.PlanResult, error) {
	pools := tr.DistinctPools()
	if len(pools) == 0 {
		return nil, fmt.Errorf("scenario produces no non-empty pools")
	}
	c, err := sailor.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if err := c.OpenJob(job, m, gpus, 0); err != nil {
		return nil, err
	}
	defer c.CloseJob(job)
	steps := make([]sailor.PlanResult, 0, len(pools))
	var prev sailor.Plan
	for i, pool := range pools {
		var res sailor.PlanResult
		if i == 0 {
			res, err = c.Plan(context.Background(), job, pool, sailor.MaxThroughput, sailor.Constraints{})
		} else {
			res, err = c.Replan(context.Background(), job, prev, pool, sailor.MaxThroughput, sailor.Constraints{})
		}
		if err != nil {
			return nil, fmt.Errorf("snapshot %d: %w", i, err)
		}
		steps = append(steps, res)
		prev = res.Plan
	}
	return steps, nil
}

// replayFleet drives a trace through one shared cluster-state ledger
// contended by `jobs` jobs (job-0 has the highest priority). Every
// event timestamp becomes one step: cap events move the per-job GPU cap
// first (a quota change takes effect before the availability events of the
// same instant, evicting oversized leases in admission order), then the
// availability events mutate the fleet, the ledger evicts the leases they
// broke in deterministic admission order, and Rebalance replans every
// leaseless job — warm where it deployed before — in priority order. The
// safety invariant (leased capacity never exceeds fleet capacity) is
// asserted after every step.
// The replay quiesces the service's speculation layer between applying a
// step's events and rebalancing, and pins MaxConcurrent, so the prefetches
// a FleetEvent launches always resolve (and always find an idle planner
// slot) before the Rebalance they predict — the ledger, including each
// step's spec_hits count, is a deterministic function of the trace alone.
func replayFleet(m sailor.Model, gpus []sailor.GPUType, tr *sailor.Trace, jobs, cap, workers int) (*fleetDoc, error) {
	ledger := sailor.NewLedger(sailor.NewPool())
	ledger.SetJobCap(cap)
	svc := sailor.NewService(sailor.ServiceConfig{Workers: workers, MaxConcurrent: 16, Fleet: ledger})
	defer svc.Quiesce()
	for i := 0; i < jobs; i++ {
		if err := svc.OpenJob(fmt.Sprintf("job-%d", i), m, gpus, jobs-i); err != nil {
			return nil, err
		}
	}
	ctx := context.Background()
	fd := &fleetDoc{Jobs: jobs, JobCapGPUs: cap}
	events, caps := tr.Events, tr.CapEvents
	ci := 0
	for i := 0; i < len(events) || ci < len(caps); {
		var at time.Duration
		switch {
		case i < len(events) && ci < len(caps) && caps[ci].At <= events[i].At:
			at = caps[ci].At
		case i < len(events):
			at = events[i].At
		default:
			at = caps[ci].At
		}
		step := fleetStep{AtSeconds: at.Seconds()}
		for ; ci < len(caps) && caps[ci].At == at; ci++ {
			newCap := caps[ci].GPUs
			for _, b := range ledger.SetJobCap(newCap) {
				step.Broken = append(step.Broken, b.Job)
			}
			step.CapGPUs = &newCap
		}
		for ; i < len(events) && events[i].At == at; i++ {
			broken, err := svc.FleetEvent(events[i])
			if err != nil {
				return nil, err
			}
			step.Events++
			for _, b := range broken {
				step.Broken = append(step.Broken, b.Job)
			}
		}
		// Drain the prefetches the events above launched before the
		// rebalance that may consume them (see the function comment).
		svc.Quiesce()
		rsteps, err := svc.Rebalance(ctx)
		if err != nil {
			return nil, err
		}
		step.Rebalance = rsteps
		for _, r := range rsteps {
			// A hit is counted only when the step's plan actually came out
			// of the speculation cache — the marker the service sets when a
			// rebalance was answered from a prefetched search.
			if r.Result != nil && r.Result.SpeculativeHit {
				step.SpecHits++
			}
		}
		if err := ledger.CheckInvariant(); err != nil {
			return nil, fmt.Errorf("after step t+%s: %w", at, err)
		}
		st, err := svc.FleetStats()
		if err != nil {
			return nil, err
		}
		if st.LeasedGPUs > st.CapacityGPUs {
			return nil, fmt.Errorf("after step t+%s: leased %d GPUs exceed fleet capacity %d",
				at, st.LeasedGPUs, st.CapacityGPUs)
		}
		step.CapacityGPUs, step.FreeGPUs = st.CapacityGPUs, st.FreeGPUs
		for _, le := range st.Leases {
			step.Leases = append(step.Leases, leaseRow{Job: le.Job, Priority: le.Priority, GPUs: le.GPUs})
		}
		fd.Steps = append(fd.Steps, step)
	}
	return fd, nil
}

// writeFleetLedger renders the per-job reconfiguration ledger of a fleet
// replay. Only wall-clock-free fields are printed, so the output is
// byte-identical at any worker count.
func writeFleetLedger(w io.Writer, fd *fleetDoc) {
	fmt.Fprintln(w, "fleet reconfiguration ledger:")
	replans, specHits := 0, 0
	for i, s := range fd.Steps {
		fmt.Fprintf(w, "step %3d  t+%-9s events=%d  capacity=%d free=%d",
			i, time.Duration(s.AtSeconds*float64(time.Second)).Round(time.Second), s.Events,
			s.CapacityGPUs, s.FreeGPUs)
		if s.CapGPUs != nil {
			fmt.Fprintf(w, "  cap=%d", *s.CapGPUs)
		}
		if len(s.Broken) > 0 {
			fmt.Fprintf(w, "  preempted=%s", strings.Join(s.Broken, ","))
		}
		fmt.Fprintln(w)
		for _, r := range s.Rebalance {
			switch r.Action {
			case "wait":
				fmt.Fprintf(w, "  %-8s %-7s %s\n", r.Job, r.Action, r.Error)
			default:
				res := r.Result
				replans++
				spec := ""
				if res.SpeculativeHit {
					specHits++
					spec = "  [spec]"
				}
				fmt.Fprintf(w, "  %-8s %-7s gpus=%-3d hits=%-5d explored=%-6d %s%s\n",
					r.Job, r.Action, res.Plan.Core().GPUCount(), res.CacheHits, res.Explored,
					res.Plan.Core(), spec)
			}
		}
		if len(s.Leases) > 0 {
			parts := make([]string, len(s.Leases))
			for j, le := range s.Leases {
				parts[j] = fmt.Sprintf("%s:%d", le.Job, le.GPUs)
			}
			fmt.Fprintf(w, "  leases:  %s\n", strings.Join(parts, "  "))
		}
	}
	if replans > 0 {
		fmt.Fprintf(w, "speculation: %d/%d rebalances served from prefetch (%.1f%% hit rate)\n",
			specHits, replans, 100*float64(specHits)/float64(replans))
	}
}

func printScenarios(w io.Writer) {
	for _, s := range sailor.Scenarios() {
		gpus := make([]string, len(s.GPUs))
		for i, g := range s.GPUs {
			gpus[i] = string(g)
		}
		fmt.Fprintf(w, "  %-18s %s (GPUs: %s, horizon %s)\n",
			s.Name, s.Description, strings.Join(gpus, "+"), s.Defaults.Horizon)
	}
}

// writeStepLedger renders the per-snapshot planner results of a -server
// replay.
func writeStepLedger(w io.Writer, steps []sailor.PlanResult) {
	fmt.Fprintln(w, "replan ledger (via server):")
	fmt.Fprintf(w, "  %3s  %4s  %5s  %8s  %s\n", "#", "gpus", "hits", "explored", "plan")
	for i, s := range steps {
		fmt.Fprintf(w, "  %3d  %4d  %5d  %8d  %s\n",
			i, s.Plan.GPUCount(), s.CacheHits, s.Explored, s.Plan)
	}
}

// writeLedger renders the reconfiguration ledger and run summary.
func writeLedger(w io.Writer, rep sailor.Report) {
	fmt.Fprintln(w, "reconfiguration ledger:")
	fmt.Fprintf(w, "  %3s  %4s  %9s  %9s  %5s  %8s  %s\n",
		"#", "gpus", "downtime", "planning", "hits", "explored", "plan")
	for i, t := range rep.Reconfigs {
		gpus, plan := 0, ""
		if i < len(rep.PlansUsed) {
			gpus = rep.PlansUsed[i].GPUCount()
			plan = rep.PlansUsed[i].String()
		}
		fmt.Fprintf(w, "  %3d  %4d  %8.2fs  %8.3fs  %5d  %8d  %s\n",
			i, gpus, t.Total(), t.Planning, t.PlanCacheHits, t.PlanExplored, plan)
	}
	fmt.Fprintln(w, "summary:")
	fmt.Fprintf(w, "  iterations:       %d done, %d lost to rollbacks, %d checkpoints\n",
		rep.IterationsDone, rep.LostIterations, rep.CheckpointsTaken)
	fmt.Fprintf(w, "  reconfigurations: %d, total downtime %.1fs over %.1f virtual hours\n",
		len(rep.Reconfigs), rep.TotalDowntimeSeconds(), rep.VirtualSeconds/3600)
	fmt.Fprintf(w, "  planning:         %.3fs wall-clock total, %d warm-cache hits\n",
		rep.PlanningSeconds, rep.PlanCacheHits)
}
