// Command sailor-replay runs a named availability scenario through the
// elastic controller and prints the reconfiguration ledger: every replan's
// plan, downtime breakdown, and warm-start cache utilisation.
//
// Usage:
//
//	sailor-replay -list
//	sailor-replay -scenario preemption-storm
//	sailor-replay -scenario zone-outage -seed 7 -model gptneo27b -base 16
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/sailor"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sailor-replay: ")

	list := flag.Bool("list", false, "list registered scenarios and exit")
	name := flag.String("scenario", "", "scenario to replay (see -list)")
	seed := flag.Int64("seed", 42, "scenario seed")
	modelName := flag.String("model", "OPT-350M", "model from the zoo (see internal/model)")
	workers := flag.Int("workers", runtime.NumCPU(), "planner search parallelism (goroutines)")
	horizon := flag.Duration("horizon", 0, "override the scenario horizon (0 = scenario default)")
	base := flag.Int("base", 0, "override the scenario base GPU count (0 = scenario default)")
	flag.Parse()

	if *list {
		printScenarios(os.Stdout)
		return
	}
	sc, ok := sailor.ScenarioByName(*name)
	if !ok {
		if *name == "" {
			fmt.Fprintln(os.Stderr, "missing -scenario; registered scenarios:")
		} else {
			fmt.Fprintf(os.Stderr, "unknown scenario %q; registered scenarios:\n", *name)
		}
		printScenarios(os.Stderr)
		os.Exit(2)
	}
	m, err := sailor.ModelByName(*modelName)
	if err != nil {
		log.Fatal(err)
	}
	if *workers <= 0 {
		*workers = runtime.NumCPU()
	}

	tr := sc.TraceWith(*seed, sailor.ScenarioOpts{Horizon: *horizon, Base: *base})
	sys, err := sailor.New(m, sc.GPUs, sailor.WithWorkers(*workers))
	if err != nil {
		log.Fatal(err)
	}
	ctrl := sys.NewController()
	rep, err := ctrl.RunElastic(tr, time.Minute)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scenario:  %s — %s\n", sc.Name, sc.Description)
	fmt.Printf("model:     %s   seed: %d   horizon: %s   events: %d   workers: %d\n",
		m.Name, *seed, tr.Horizon, len(tr.Events), *workers)
	fmt.Println()
	writeLedger(os.Stdout, rep)
}

func printScenarios(w io.Writer) {
	for _, s := range sailor.Scenarios() {
		gpus := make([]string, len(s.GPUs))
		for i, g := range s.GPUs {
			gpus[i] = string(g)
		}
		fmt.Fprintf(w, "  %-18s %s (GPUs: %s, horizon %s)\n",
			s.Name, s.Description, strings.Join(gpus, "+"), s.Defaults.Horizon)
	}
}

// writeLedger renders the reconfiguration ledger and run summary.
func writeLedger(w io.Writer, rep sailor.Report) {
	fmt.Fprintln(w, "reconfiguration ledger:")
	fmt.Fprintf(w, "  %3s  %4s  %9s  %9s  %5s  %8s  %s\n",
		"#", "gpus", "downtime", "planning", "hits", "explored", "plan")
	totalDown := 0.0
	for i, t := range rep.Reconfigs {
		gpus, plan := 0, ""
		if i < len(rep.PlansUsed) {
			gpus = rep.PlansUsed[i].GPUCount()
			plan = rep.PlansUsed[i].String()
		}
		totalDown += t.Total()
		fmt.Fprintf(w, "  %3d  %4d  %8.2fs  %8.3fs  %5d  %8d  %s\n",
			i, gpus, t.Total(), t.Planning, t.PlanCacheHits, t.PlanExplored, plan)
	}
	fmt.Fprintln(w, "summary:")
	fmt.Fprintf(w, "  iterations:       %d done, %d lost to rollbacks, %d checkpoints\n",
		rep.IterationsDone, rep.LostIterations, rep.CheckpointsTaken)
	fmt.Fprintf(w, "  reconfigurations: %d, total downtime %.1fs over %.1f virtual hours\n",
		len(rep.Reconfigs), totalDown, rep.VirtualSeconds/3600)
	fmt.Fprintf(w, "  planning:         %.3fs wall-clock total, %d warm-cache hits\n",
		rep.PlanningSeconds, rep.PlanCacheHits)
}
