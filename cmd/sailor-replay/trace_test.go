package main

// End-to-end coverage of -trace: an external trace file (the committed
// testdata/external-spot.trace.json, with its CSV twin) drives a 3-job
// fleet replay through the shared ledger — ROADMAP item 4's acceptance —
// golden-pinned and byte-identical at workers=1 vs 8. The trace carries cap
// events, so the quota-squeeze path (SetJobCap mid-replay) is exercised on
// a real document, not just a composed scenario.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/testutil"
)

const externalTrace = "testdata/external-spot.trace.json"

func runTraceReplay(t *testing.T, path string, jobs, workers int) []byte {
	t.Helper()
	var buf bytes.Buffer
	args := []string{"-trace", path, "-fleet", "-jobs", fmt.Sprint(jobs),
		"-workers", fmt.Sprint(workers), "-json"}
	if err := run(args, &buf); err != nil {
		t.Fatalf("-trace %s jobs=%d workers=%d: %v", path, jobs, workers, err)
	}
	return buf.Bytes()
}

// zeroTraceClocks is zeroFleetClocks plus the trace_file path, so replays
// of the JSON document and its CSV twin normalize to identical ledgers.
func zeroTraceClocks(m map[string]any) {
	zeroFleetClocks(m)
	delete(m, "trace_file")
}

// TestTraceFleetGolden pins the external-trace 3-job fleet ledger
// (regenerate with -update).
func TestTraceFleetGolden(t *testing.T) {
	out := runTraceReplay(t, externalTrace, 3, 1)
	testutil.CheckGolden(t, "trace-external-spot.golden.json",
		testutil.NormalizeJSON(t, out, zeroFleetClocks))
}

// TestTraceFleetWorkerDeterminism: the external-trace fleet ledger is
// byte-identical at workers=1 and workers=8.
func TestTraceFleetWorkerDeterminism(t *testing.T) {
	j1 := testutil.NormalizeJSON(t, runTraceReplay(t, externalTrace, 3, 1), zeroFleetClocks)
	j8 := testutil.NormalizeJSON(t, runTraceReplay(t, externalTrace, 3, 8), zeroFleetClocks)
	if !bytes.Equal(j1, j8) {
		t.Errorf("external-trace ledger differs between workers=1 and workers=8:\n%s\nvs\n%s", j1, j8)
	}
}

// TestTraceCSVEquivalence: replaying the CSV twin produces the identical
// fleet ledger — the import canonicalizes to the same trace.
func TestTraceCSVEquivalence(t *testing.T) {
	jsonOut := testutil.NormalizeJSON(t, runTraceReplay(t, externalTrace, 3, 1), zeroTraceClocks)
	csvOut := testutil.NormalizeJSON(t, runTraceReplay(t, "testdata/external-spot.trace.csv", 3, 1), zeroTraceClocks)
	if !bytes.Equal(jsonOut, csvOut) {
		t.Errorf("CSV twin replays differently:\n%s\nvs\n%s", jsonOut, csvOut)
	}
}

// TestTraceCapEvents: the trace's cap events reach the ledger — the
// squeeze step reports the new cap and no lease ever exceeds the cap in
// force.
func TestTraceCapEvents(t *testing.T) {
	out := runTraceReplay(t, externalTrace, 3, 1)
	var doc map[string]any
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatal(err)
	}
	fl := doc["fleet"].(map[string]any)
	steps := fl["steps"].([]any)
	capInForce := int(fl["job_cap_gpus"].(float64))
	sawSqueeze := false
	for _, s := range steps {
		st := s.(map[string]any)
		if c, ok := st["cap_gpus"].(float64); ok {
			capInForce = int(c)
			if capInForce == 4 {
				sawSqueeze = true
			}
		}
		if capInForce <= 0 {
			continue
		}
		if ls, ok := st["leases"].([]any); ok {
			for _, l := range ls {
				le := l.(map[string]any)
				if g := int(le["gpus"].(float64)); g > capInForce {
					t.Errorf("step t+%vs: lease %v holds %d GPUs over cap %d",
						st["at_seconds"], le["job"], g, capInForce)
				}
			}
		}
	}
	if !sawSqueeze {
		t.Error("the 4-GPU quota squeeze never surfaced in the ledger")
	}
}

// advCases are the committed adversarial worst cases: traces sailor-advgen
// found to maximize a replay-badness objective against the fleet
// (regenerate candidates with `go run ./cmd/sailor-advgen`). Once
// committed they are ordinary golden regression scenarios — pinned
// ledgers, byte-identical at any worker count — so the planner's behaviour
// on its own worst inputs can never drift silently.
var advCases = []string{
	"testdata/adv-downtime-1.trace.json",
	"testdata/adv-churn-1.trace.json",
}

// TestAdversarialTraceGolden pins the fleet ledger of every committed
// adversarial worst case (regenerate with -update).
func TestAdversarialTraceGolden(t *testing.T) {
	for _, path := range advCases {
		out := runTraceReplay(t, path, 3, 1)
		name := strings.TrimSuffix(filepath.Base(path), ".trace.json")
		testutil.CheckGolden(t, "trace-"+name+".golden.json",
			testutil.NormalizeJSON(t, out, zeroFleetClocks))
	}
}

// TestAdversarialTraceWorkerDeterminism: adversarial worst cases obey the
// same determinism contract as the scenario families — byte-identical
// ledgers at workers=1 and workers=8.
func TestAdversarialTraceWorkerDeterminism(t *testing.T) {
	for _, path := range advCases {
		j1 := testutil.NormalizeJSON(t, runTraceReplay(t, path, 3, 1), zeroFleetClocks)
		j8 := testutil.NormalizeJSON(t, runTraceReplay(t, path, 3, 8), zeroFleetClocks)
		if !bytes.Equal(j1, j8) {
			t.Errorf("%s: ledger differs between workers=1 and workers=8", path)
		}
	}
}

// TestTraceControllerPath: without -fleet, an external trace drives the
// single-job elastic controller.
func TestTraceControllerPath(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-trace", externalTrace, "-workers", "1"}, &buf); err != nil {
		t.Fatalf("controller replay: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "external-spot") || !strings.Contains(out, "reconfiguration ledger") {
		t.Errorf("controller output missing trace name or ledger:\n%s", out)
	}
}

// TestTraceFlagValidation: -trace rejects nonsense combinations and bad
// documents with clear errors.
func TestTraceFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-trace", externalTrace, "-scenario", "zone-outage"}, "mutually exclusive"},
		{[]string{"-trace", externalTrace, "-server", "x:1"}, "in-process"},
		{[]string{"-trace", externalTrace, "-base", "8"}, "external trace fixes both"},
		{[]string{"-trace", externalTrace, "-horizon", "1h"}, "external trace fixes both"},
		{[]string{"-trace", "testdata/no-such-file.json"}, "no such file"},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		if err := run(tc.args, &buf); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%v = %v, want error mentioning %q", tc.args, err, tc.want)
		}
	}
}
