package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/testutil"
)

// fleetCases are the golden-pinned fleet replays: two scenario families,
// multiple contending jobs each (acceptance: >=2 families x >=2 jobs).
var fleetCases = []struct {
	scenario string
	jobs     int
}{
	{"preemption-storm", 3},
	{"zone-outage", 2},
	// Composed scenario: demand autoscaling moves the per-job cap with the
	// trace, threading SetJobCap through the fleet replay loop.
	{"preemption-storm+autoscale", 3},
}

// zeroFleetClocks drops the one wall-clock field of a -fleet -json ledger:
// each rebalance result's search time.
func zeroFleetClocks(m map[string]any) {
	// The search parallelism is part of the request, not the result; drop
	// it so workers=1 and workers=8 ledgers compare byte-for-byte.
	delete(m, "workers")
	fl, ok := m["fleet"].(map[string]any)
	if !ok {
		return
	}
	steps, _ := fl["steps"].([]any)
	for _, s := range steps {
		rbs, _ := s.(map[string]any)["rebalance"].([]any)
		for _, rb := range rbs {
			if res, ok := rb.(map[string]any)["result"].(map[string]any); ok {
				res["search_time_ns"] = 0.0
			}
		}
	}
}

func runFleetReplay(t *testing.T, scenario string, jobs, workers int, jsonOut bool) []byte {
	t.Helper()
	args := []string{"-scenario", scenario, "-seed", "1", "-fleet",
		"-jobs", fmt.Sprint(jobs), "-workers", fmt.Sprint(workers)}
	if jsonOut {
		args = append(args, "-json")
	}
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("%s jobs=%d workers=%d: %v", scenario, jobs, workers, err)
	}
	return buf.Bytes()
}

// TestFleetJSONGolden pins the -fleet -json per-job reconfiguration ledger
// of every fleet case (regenerate with -update).
func TestFleetJSONGolden(t *testing.T) {
	for _, tc := range fleetCases {
		t.Run(tc.scenario, func(t *testing.T) {
			out := runFleetReplay(t, tc.scenario, tc.jobs, 1, true)
			name := fmt.Sprintf("fleet-%s.golden.json", tc.scenario)
			testutil.CheckGolden(t, name, testutil.NormalizeJSON(t, out, zeroFleetClocks))
		})
	}
}

// TestFleetWorkerDeterminism is the fleet determinism acceptance: the
// whole per-job ledger — plans, estimates, cache-hit trajectories,
// explored counts, lease tables, preemption order — is byte-identical at
// workers=1 and workers=8, in both output modes.
func TestFleetWorkerDeterminism(t *testing.T) {
	for _, tc := range fleetCases {
		t.Run(tc.scenario, func(t *testing.T) {
			j1 := testutil.NormalizeJSON(t, runFleetReplay(t, tc.scenario, tc.jobs, 1, true), zeroFleetClocks)
			j8 := testutil.NormalizeJSON(t, runFleetReplay(t, tc.scenario, tc.jobs, 8, true), zeroFleetClocks)
			if !bytes.Equal(j1, j8) {
				t.Errorf("JSON ledger differs between workers=1 and workers=8:\n%s\nvs\n%s", j1, j8)
			}
			// The text ledger carries no wall-clock fields at all, so it must
			// be byte-identical too once the workers count in the header is
			// dropped.
			strip := func(out []byte) string {
				lines := strings.SplitN(string(out), "\n", 3)
				return lines[len(lines)-1]
			}
			t1 := strip(runFleetReplay(t, tc.scenario, tc.jobs, 1, false))
			t8 := strip(runFleetReplay(t, tc.scenario, tc.jobs, 8, false))
			if t1 != t8 {
				t.Errorf("text ledger differs between workers=1 and workers=8:\n%s\nvs\n%s", t1, t8)
			}
		})
	}
}

// TestFleetLedgerShape sanity-checks the JSON document: admission order is
// job-0 first, a preemption appears somewhere, leased GPUs never exceed
// capacity (the harness already asserts the ledger invariant per step).
func TestFleetLedgerShape(t *testing.T) {
	out := runFleetReplay(t, "preemption-storm", 3, 1, true)
	var doc map[string]any
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatal(err)
	}
	fl := doc["fleet"].(map[string]any)
	if got := fl["jobs"].(float64); got != 3 {
		t.Errorf("jobs = %v, want 3", got)
	}
	steps := fl["steps"].([]any)
	if len(steps) < 5 {
		t.Fatalf("only %d steps", len(steps))
	}
	preempted := false
	for _, s := range steps {
		st := s.(map[string]any)
		if b, ok := st["broken"].([]any); ok && len(b) > 0 {
			preempted = true
		}
		cap := st["capacity_gpus"].(float64)
		free := st["free_gpus"].(float64)
		leased := 0.0
		if ls, ok := st["leases"].([]any); ok {
			for _, l := range ls {
				leased += l.(map[string]any)["gpus"].(float64)
			}
		}
		if leased != cap-free {
			t.Errorf("step %v: leases %v != capacity %v - free %v", st["at_seconds"], leased, cap, free)
		}
	}
	if !preempted {
		t.Error("preemption-storm fleet replay never preempted a lease")
	}
	first := steps[0].(map[string]any)["rebalance"].([]any)[0].(map[string]any)
	if first["job"] != "job-0" {
		t.Errorf("first rebalance step = %v, want job-0 (highest priority)", first["job"])
	}
}

// TestFleetFlagValidation: -fleet mode rejects nonsense combinations.
func TestFleetFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scenario", "zone-outage", "-fleet", "-server", "x:1"}, &buf); err == nil ||
		!strings.Contains(err.Error(), "-fleet runs in-process") {
		t.Errorf("-fleet -server = %v, want error", err)
	}
	if err := run([]string{"-scenario", "zone-outage", "-fleet", "-jobs", "0"}, &buf); err == nil ||
		!strings.Contains(err.Error(), "-jobs") {
		t.Errorf("-jobs 0 = %v, want error", err)
	}
}
